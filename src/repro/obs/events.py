"""Request-scoped tracing for the serve stack: the ``serve-events`` log.

This module is the request-side twin of :mod:`repro.obs.tracing`.  Where
``Tracer``/``Span`` attribute simulated *rounds* to algorithm phases,
the types here attribute a served request's *wall-clock* to the
degradation-ladder phases it passed through (``admit`` -> ``queue`` ->
``dispatch`` -> ``run`` -> ``verify`` -> ``respond``, plus ``retry`` /
``breaker-fastfail`` / ``shed``), and serialize the result — interleaved
with structured service events and per-phase latency histograms — into
one causally-ordered JSONL file (the ``serve-events`` schema).

Everything here is plain data: :class:`TraceContext` is a frozen,
picklable dataclass so it can cross the process boundary into pool
workers and shard engines; request records and events are dicts of JSON
primitives.  Nothing in this module imports from ``repro.serve`` or
``repro.congest`` — the dependency points one way, exactly like
:mod:`repro.obs.tracing`.

Attribution is checked the same way ``repro trace phases`` checks round
attribution: for every request, the top-level phase spans must be
non-overlapping and their durations plus the untraced remainder must
equal the request's wall time (within float epsilon).  Orphan spans —
opened but never closed, e.g. when a worker is SIGKILLed mid-span — must
be force-closed with a terminal status before the record is finalized;
the offline verifier counts any that slipped through.
"""

from __future__ import annotations

import json
import math
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Schema identity of the event log.  The header line carries both, and
#: :func:`load_events` warns (never fails) on anything it does not know.
SERVE_EVENTS_SCHEMA = "serve-events"
SERVE_EVENTS_VERSION = 1

KNOWN_EVENT_KINDS = {"schema", "request", "span", "event", "phase-hist", "summary"}

#: Canonical rendering order of the engine's top-level phases.
PHASES = (
    "admit",
    "shed",
    "breaker-fastfail",
    "dispatch",
    "queue",
    "run",
    "retry",
    "verify",
    "respond",
)

#: Default latency buckets for the ``phase-hist`` records (seconds).
PHASE_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

#: The root span of every request record.
ROOT_SPAN_ID = 1

_EPS = 1e-6


@dataclass(frozen=True)
class TraceContext:
    """Picklable trace lineage, carried across process boundaries.

    ``trace_id`` names the request; ``span_id`` is the parent span the
    receiver should hang its subtree under; ``deadline_ts`` mirrors the
    request deadline so remote workers can decline expired work without
    a second argument.
    """

    trace_id: str
    span_id: int = ROOT_SPAN_ID
    deadline_ts: Optional[float] = None


class RequestTrace:
    """Span recorder for one served request.

    Spans are plain dicts ``{id, parent, name, status, t0, t1}`` with
    times in seconds relative to the request's start (one monotonic
    clock, owned by the engine — worker-reported subtrees are grafted
    onto it via :meth:`graft`).  Span id 1 is the root ``request`` span;
    its direct children are the attribution phases.
    """

    __slots__ = ("trace_id", "started_ts", "spans", "_clock", "_t0", "_open")

    def __init__(self, trace_id: str, *, clock: Callable[[], float] = time.monotonic):
        self.trace_id = trace_id
        self.started_ts = time.time()
        self._clock = clock
        self._t0 = clock()
        root = {"id": ROOT_SPAN_ID, "parent": 0, "name": "request",
                "status": None, "t0": 0.0, "t1": None}
        self.spans: List[Dict[str, Any]] = [root]
        self._open: Dict[int, Dict[str, Any]] = {ROOT_SPAN_ID: root}

    def now(self) -> float:
        """Seconds since the request started, on the trace's clock."""
        return self._clock() - self._t0

    def begin(self, name: str, parent: int = ROOT_SPAN_ID) -> int:
        """Open a span; returns its id (pass to :meth:`end`)."""
        span = {"id": len(self.spans) + 1, "parent": parent, "name": name,
                "status": None, "t0": self.now(), "t1": None}
        self.spans.append(span)
        self._open[span["id"]] = span
        return span["id"]

    def end(self, span_id: int, status: str = "ok") -> None:
        span = self._open.pop(span_id)
        span["status"] = status
        span["t1"] = self.now()

    def add(self, name: str, t0: float, t1: float, *,
            status: str = "ok", parent: int = ROOT_SPAN_ID) -> int:
        """Record a span retroactively (already closed)."""
        span = {"id": len(self.spans) + 1, "parent": parent, "name": name,
                "status": status, "t0": t0, "t1": max(t0, t1)}
        self.spans.append(span)
        return span["id"]

    def graft(self, subtree: Sequence[Dict[str, Any]], parent: int,
              base: float, clamp: Optional[float] = None) -> int:
        """Attach a worker-reported span subtree under ``parent``.

        ``subtree`` spans carry offsets relative to the worker's own
        entry; ``base`` places that entry on this trace's clock, and
        ``clamp`` (if given) caps child times at the enclosing span's
        end so clock skew cannot leak a child outside its parent.
        """
        mapping: Dict[int, int] = {}
        for rec in subtree:
            t0 = base + float(rec.get("t0", 0.0))
            t1 = base + float(rec.get("t1", rec.get("t0", 0.0)))
            if clamp is not None:
                t0, t1 = min(t0, clamp), min(t1, clamp)
            mapping[rec["id"]] = self.add(
                rec["name"], t0, t1,
                status=rec.get("status", "ok"),
                parent=mapping.get(rec.get("parent", 0), parent),
            )
        return len(mapping)

    def force_close_open(self, status: str = "killed") -> int:
        """Terminally close every open span except the root.

        This is the orphan-span guarantee: a worker SIGKILLed mid-span
        leaves no dangling ``t1 = None`` entries — the engine closes
        them with a terminal status and the timeline still validates.
        """
        closed = 0
        now = self.now()
        for sid in [s for s in self._open if s != ROOT_SPAN_ID]:
            span = self._open.pop(sid)
            span["status"] = status
            span["t1"] = max(span["t0"], now)
            closed += 1
        return closed

    def finalize(self, status: str, code: int, *, attempts: int = 1,
                 cached: bool = False) -> Dict[str, Any]:
        """Close the root span and return the ``request`` record."""
        root = self.spans[0]
        root["status"] = status
        root["t1"] = self.now()
        self._open.pop(ROOT_SPAN_ID, None)
        return {
            "kind": "request",
            "trace": self.trace_id,
            "status": status,
            "code": code,
            "ts": self.started_ts,
            "wall_s": root["t1"],
            "attempts": attempts,
            "cached": cached,
            "spans": [dict(s) for s in self.spans],
        }


class EventLog:
    """Bounded ring buffer of structured service events.

    Always on (feeding ``/statusz``); the serve-events JSONL interleaves
    the retained window with the request records at flush time.  Event
    types in use: ``pool-restart``, ``worker-kill``, ``worker-died``,
    ``breaker-open``, ``breaker-close``, ``wedge-kill``, ``shed``,
    ``drain``, ``scheduler-fallback``.
    """

    def __init__(self, capacity: int = 256, *, clock: Callable[[], float] = time.time):
        self._events: deque = deque(maxlen=max(1, capacity))
        self._clock = clock
        self.emitted = 0

    def emit(self, type_: str, **fields: Any) -> Dict[str, Any]:
        event = {"kind": "event", "ts": self._clock(), "type": type_, **fields}
        self._events.append(event)
        self.emitted += 1
        return event

    def snapshot(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        events = [dict(e) for e in self._events]
        return events[-last:] if last else events


# -- attribution -------------------------------------------------------------


def _phase_spans(request: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The request's top-level phases: direct children of the root span."""
    return sorted(
        (s for s in request.get("spans", ())
         if s.get("parent") == ROOT_SPAN_ID and s.get("t1") is not None),
        key=lambda s: (s["t0"], s["id"]),
    )


def attribution_report(requests: Sequence[Dict[str, Any]], *,
                       eps: float = _EPS) -> Dict[str, Any]:
    """Verify attribution completeness over request records.

    For every request: top-level phase spans must be non-overlapping,
    never extend past the request's wall time, and leave a non-negative
    untraced remainder — so ``sum(phases) + remainder == wall`` exactly.
    Open (orphan) spans anywhere in the tree fail the request.
    """
    total = len(requests)
    complete = 0
    orphans = 0
    killed = 0
    mismatches: List[str] = []
    for req in requests:
        spans = req.get("spans", [])
        open_spans = sum(1 for s in spans if s.get("t1") is None)
        orphans += open_spans
        killed += sum(1 for s in spans if s.get("status") == "killed")
        wall = float(req.get("wall_s", 0.0))
        ok = open_spans == 0
        edge = 0.0
        covered = 0.0
        for s in _phase_spans(req):
            if s["t0"] < edge - eps:
                ok = False  # overlapping phases double-charge the wall
            covered += s["t1"] - s["t0"]
            edge = max(edge, s["t1"])
        if edge > wall + eps or wall - covered < -eps:
            ok = False
        if ok:
            complete += 1
        else:
            mismatches.append(str(req.get("trace")))
    return {
        "requests": total,
        "complete": complete,
        "attributed_pct": (100.0 * complete / total) if total else 100.0,
        "orphan_spans": orphans,
        "killed_spans": killed,
        "mismatches": mismatches[:8],
    }


# -- the serve-events JSONL --------------------------------------------------


def _phase_histograms(requests: Sequence[Dict[str, Any]],
                      buckets: Sequence[float] = PHASE_BUCKETS) -> List[Dict[str, Any]]:
    """Per-phase latency histograms with exemplar trace ids."""
    by_phase: Dict[str, List[tuple]] = {}
    for req in requests:
        for s in _phase_spans(req):
            by_phase.setdefault(s["name"], []).append(
                (s["t1"] - s["t0"], req.get("trace")))
    records = []
    order = {name: i for i, name in enumerate(PHASES)}
    for name in sorted(by_phase, key=lambda n: (order.get(n, len(PHASES)), n)):
        durations = by_phase[name]
        counts = [0] * (len(buckets) + 1)
        for dur, _ in durations:
            for i, bound in enumerate(buckets):
                if dur <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        exemplar_dur, exemplar_trace = max(durations)
        records.append({
            "kind": "phase-hist",
            "phase": name,
            "count": len(durations),
            "sum": sum(d for d, _ in durations),
            "buckets": {str(b): c for b, c in zip(buckets, counts)},
            "overflow": counts[-1],
            "exemplar": {"trace": exemplar_trace, "latency_s": exemplar_dur},
        })
    return records


def write_events(path, requests: Sequence[Dict[str, Any]],
                 events: Sequence[Dict[str, Any]] = (), *,
                 buckets: Sequence[float] = PHASE_BUCKETS) -> int:
    """Write the serve-events JSONL: header first, then request records
    with their span lines and structured events merged in causal
    (timestamp) order, then per-phase histograms, then the summary.
    Returns the number of lines written."""
    merged: List[tuple] = []
    for i, req in enumerate(requests):
        ts = float(req.get("ts", 0.0))
        head = {k: v for k, v in req.items() if k != "spans"}
        head["spans"] = len(req.get("spans", ()))
        merged.append((ts, 0, i, 0, head))
        for j, span in enumerate(req.get("spans", ())):
            merged.append((ts, 0, i, j + 1,
                           {"kind": "span", "trace": req.get("trace"), **span}))
    for i, ev in enumerate(events):
        merged.append((float(ev.get("ts", 0.0)), 1, i, 0, dict(ev)))
    merged.sort(key=lambda r: r[:4])
    report = attribution_report(requests)
    lines = 0
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "kind": "schema",
            "schema": SERVE_EVENTS_SCHEMA,
            "version": SERVE_EVENTS_VERSION,
        }) + "\n")
        lines += 1
        for *_, rec in merged:
            fh.write(json.dumps(rec) + "\n")
            lines += 1
        for rec in _phase_histograms(requests, buckets):
            fh.write(json.dumps(rec) + "\n")
            lines += 1
        fh.write(json.dumps({
            "kind": "summary",
            "requests": report["requests"],
            "events": len(events),
            "attribution": report,
        }) + "\n")
        lines += 1
    return lines


def load_events(path) -> Dict[str, Any]:
    """Read a serve-events JSONL back into a document.

    Returns ``{"version", "requests", "events", "phase_hists",
    "summary", "report"}`` where each request has its ``spans`` list
    re-attached and ``report`` is a fresh :func:`attribution_report`
    (recomputed, not trusted from the file).  Warns — never fails — on a
    missing header, a newer version, or unknown record kinds.
    """
    requests: List[Dict[str, Any]] = []
    by_trace: Dict[str, Dict[str, Any]] = {}
    events: List[Dict[str, Any]] = []
    hists: List[Dict[str, Any]] = []
    summary = None
    version = None
    unknown = set()
    with open(path) as fh:
        for lineno, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("kind")
            if lineno == 0:
                if kind != "schema":
                    warnings.warn("serve-events dump has no schema header; "
                                  "reading as a legacy stream")
                else:
                    version = rec.get("version")
                    if version is not None and version > SERVE_EVENTS_VERSION:
                        warnings.warn(
                            f"serve-events version {version} is newer than "
                            f"this reader ({SERVE_EVENTS_VERSION})")
                    continue
            if kind == "request":
                req = dict(rec)
                req["spans"] = []
                requests.append(req)
                by_trace[req.get("trace")] = req
            elif kind == "span":
                span = {k: v for k, v in rec.items() if k not in ("kind", "trace")}
                owner = by_trace.get(rec.get("trace"))
                if owner is not None:
                    owner["spans"].append(span)
            elif kind == "event":
                events.append(rec)
            elif kind == "phase-hist":
                hists.append(rec)
            elif kind == "summary":
                summary = rec
            elif kind != "schema" and kind not in unknown:
                unknown.add(kind)
                warnings.warn(f"serve-events dump has unknown kind {kind!r}")
    return {
        "version": version,
        "requests": requests,
        "events": events,
        "phase_hists": hists,
        "summary": summary,
        "report": attribution_report(requests),
    }


# -- rendering ---------------------------------------------------------------


def _percentile(sorted_values: Sequence[float], p: float) -> float:
    """Ceil-rank percentile (matches ``repro.serve.loadgen``)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _verdict_lines(report: Dict[str, Any]) -> List[str]:
    lines = []
    if report["complete"] == report["requests"]:
        lines.append("attribution: phases + untraced == wall "
                     "(complete, non-overlapping)")
    else:
        lines.append("attribution: MISMATCH for traces "
                     + ", ".join(report["mismatches"]))
    lines.append(f"fully attributed: {report['attributed_pct']:.1f}% of requests")
    lines.append(f"orphan spans: {report['orphan_spans']}")
    return lines


def render_serve_summary(doc: Dict[str, Any]) -> str:
    """Aggregate view plus the attribution/orphan verdict."""
    requests = doc["requests"]
    report = doc["report"]
    statuses: Dict[str, int] = {}
    for req in requests:
        statuses[req.get("status", "?")] = statuses.get(req.get("status", "?"), 0) + 1
    walls = sorted(float(r.get("wall_s", 0.0)) for r in requests)
    out = [f"serve-events v{doc.get('version')}"]
    out.append(f"requests: {len(requests)}  ("
               + ", ".join(f"{k}: {v}" for k, v in sorted(statuses.items())) + ")")
    out.append(f"spans: {sum(len(r.get('spans', ())) for r in requests)}"
               f"  events: {len(doc['events'])}"
               f"  killed spans: {report['killed_spans']}")
    if walls:
        out.append("wall_s: p50={:.4f} p99={:.4f} max={:.4f}".format(
            _percentile(walls, 50), _percentile(walls, 99), walls[-1]))
    out.extend(_verdict_lines(report))
    return "\n".join(out)


def _dominant_phase(request: Dict[str, Any]) -> tuple:
    phases = _phase_spans(request)
    if not phases:
        return ("(untraced)", float(request.get("wall_s", 0.0)))
    top = max(phases, key=lambda s: s["t1"] - s["t0"])
    return (top["name"], top["t1"] - top["t0"])


def render_critical_path(doc: Dict[str, Any]) -> str:
    """Which phase dominates where the latency goes, at p50 and p99."""
    requests = doc["requests"]
    report = doc["report"]
    by_phase: Dict[str, List[float]] = {}
    untraced: List[float] = []
    for req in requests:
        phases = _phase_spans(req)
        covered = 0.0
        for s in phases:
            by_phase.setdefault(s["name"], []).append(s["t1"] - s["t0"])
            covered += s["t1"] - s["t0"]
        untraced.append(max(0.0, float(req.get("wall_s", 0.0)) - covered))
    order = {name: i for i, name in enumerate(PHASES)}
    out = ["phase             count     total_s        p50        p99"]
    rows = sorted(by_phase.items(),
                  key=lambda kv: (order.get(kv[0], len(PHASES)), kv[0]))
    if any(u > 0 for u in untraced):
        rows.append(("(untraced)", untraced))
    for name, durs in rows:
        durs = sorted(durs)
        out.append("{:<16} {:>6} {:>11.4f} {:>10.4f} {:>10.4f}".format(
            name, len(durs), sum(durs),
            _percentile(durs, 50), _percentile(durs, 99)))
    ranked = sorted(requests, key=lambda r: float(r.get("wall_s", 0.0)))
    for label, p in (("p50", 50), ("p99", 99)):
        if ranked:
            rank = max(1, math.ceil(p / 100.0 * len(ranked))) - 1
            req = ranked[min(rank, len(ranked) - 1)]
            name, dur = _dominant_phase(req)
            out.append(
                f"critical path at {label}: {name} "
                f"({dur:.4f}s of {float(req.get('wall_s', 0.0)):.4f}s, "
                f"trace={req.get('trace')})")
    out.extend(_verdict_lines(report))
    return "\n".join(out)


def _render_request(req: Dict[str, Any]) -> List[str]:
    out = [
        "trace={} status={} code={} wall={:.4f}s attempts={} cached={}".format(
            req.get("trace"), req.get("status"), req.get("code"),
            float(req.get("wall_s", 0.0)), req.get("attempts"),
            req.get("cached"))
    ]
    depth = {0: -1}
    for span in sorted(req.get("spans", ()), key=lambda s: s["id"]):
        depth[span["id"]] = depth.get(span.get("parent", 0), 0) + 1
        t1 = span.get("t1")
        window = ("[{:>8.4f} ..     open]".format(span["t0"]) if t1 is None
                  else "[{:>8.4f} .. {:>8.4f}]".format(span["t0"], t1))
        out.append("  {} {}{} ({})".format(
            window, "  " * depth[span["id"]], span["name"], span.get("status")))
    return out


def render_timeline(doc: Dict[str, Any], trace: Optional[str] = None,
                    limit: int = 5) -> str:
    """Per-request span timelines (all spans, worker subtrees included)."""
    requests = doc["requests"]
    if trace is not None:
        requests = [r for r in requests if r.get("trace") == trace]
        if not requests:
            return f"no request with trace id {trace!r}"
    out: List[str] = []
    for req in requests[:limit]:
        out.extend(_render_request(req))
    if len(requests) > limit:
        out.append(f"... {len(requests) - limit} more "
                   f"(--limit to widen, --trace to pick one)")
    return "\n".join(out)


def render_slow(doc: Dict[str, Any], k: int = 5) -> str:
    """The k slowest requests with their phase breakdown."""
    ranked = sorted(doc["requests"],
                    key=lambda r: -float(r.get("wall_s", 0.0)))[:k]
    out: List[str] = []
    for req in ranked:
        wall = float(req.get("wall_s", 0.0))
        parts = []
        for s in _phase_spans(req):
            dur = s["t1"] - s["t0"]
            pct = (100.0 * dur / wall) if wall else 0.0
            parts.append(f"{s['name']}={dur:.4f}s ({pct:.0f}%)")
        out.append("{:.4f}s  trace={} status={}  {}".format(
            wall, req.get("trace"), req.get("status"), "  ".join(parts)))
    return "\n".join(out) if out else "no requests"
