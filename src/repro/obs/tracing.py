"""Span-based phase attribution for the CONGEST simulator.

A :class:`Tracer` hands out :class:`Span` context managers that nest::

    trace = RoundTrace()
    tracer = Tracer()
    tracer.attach(trace)
    with tracer.span("separator-search", level=2):
        with tracer.span("weights-problem"):
            weights_problem_run(cfg, trace=trace)

While a span is open, every :meth:`RoundTrace.record_round` call
attributes that round's counters — one round, its messages, words,
dropped/lost/duplicated counts — to the **innermost** open span, and the
round record itself is stamped with the span id.  Attribution is
therefore complete and non-overlapping by construction: summing the
*self* counters over all spans plus the untraced remainder reproduces
the trace totals exactly (the ``repro trace phases`` CLI checks this).
Wall-clock is measured per span at enter/exit, so a span's interval also
covers local orchestration work between simulator passes.

Spans never steer a run: a traced run and an untraced run execute the
same rounds and deliver the same messages, and
:func:`repro.congest.faults.run_fingerprint` is bit-identical either way
(locked by ``tests/test_obs.py``).

Tracing off costs nothing: :func:`trace_span` returns the shared
:data:`NULL_SPAN` singleton when no tracer is attached — no :class:`Span`
object is allocated (also locked by the tests).

This module deliberately imports nothing from :mod:`repro.congest`;
``congest`` imports *it*, keeping the dependency one-way.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["NULL_SPAN", "Span", "Tracer", "trace_span"]


class _NullSpan:
    """Reentrant no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: Shared singleton; ``with NULL_SPAN:`` nests freely and allocates nothing.
NULL_SPAN = _NullSpan()


class Span:
    """One named phase interval, created via :meth:`Tracer.span`.

    Attributes
    ----------
    id:
        1-based id in open order (unique within the tracer).
    name / attrs:
        The phase name and free-form attributes (``level=k`` etc.).
    parent_id / depth:
        Nesting structure at open time (``None`` / 0 for a root span).
    open_at / close_at:
        Indices into the attached trace's ``records`` list: the span
        covers ``records[open_at:close_at]``.  ``close_at`` is ``None``
        while the span is open.
    rounds, messages, words, dropped, lost, duplicated:
        *Self* counters — rounds recorded while this span was the
        innermost open span (child spans absorb their own).
    wall_s:
        Wall-clock seconds between enter and exit (includes children).
    """

    __slots__ = (
        "id",
        "name",
        "attrs",
        "parent_id",
        "depth",
        "open_at",
        "close_at",
        "rounds",
        "messages",
        "words",
        "dropped",
        "lost",
        "duplicated",
        "wall_s",
        "_tracer",
        "_t0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = 0  # assigned at __enter__
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.open_at = 0
        self.close_at: Optional[int] = None
        self.rounds = 0
        self.messages = 0
        self.words = 0
        self.dropped = 0
        self.lost = 0
        self.duplicated = 0
        self.wall_s = 0.0
        self._t0 = 0.0

    # -- context manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self)
        return False

    # -- serialization --------------------------------------------------
    def open_event(self) -> Dict[str, Any]:
        event = {
            "kind": "span-open",
            "id": self.id,
            "parent": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "attrs": dict(self.attrs),
        }
        context = getattr(self._tracer, "context", None)
        if context is not None:
            # request lineage: every span event names the request that
            # caused it, so merged sharded dumps keep their ancestry
            event["trace"] = context.trace_id
        return event

    def close_event(self) -> Dict[str, Any]:
        return {
            "kind": "span-close",
            "id": self.id,
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
            "dropped": self.dropped,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "wall_s": round(self.wall_s, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.close_at is None else "closed"
        return (
            f"Span(id={self.id}, name={self.name!r}, {state}, "
            f"rounds={self.rounds}, messages={self.messages})"
        )


class Tracer:
    """Hands out nesting spans and owns the open-span stack.

    Attach to a live :class:`repro.congest.trace.RoundTrace` with
    :meth:`attach`; from then on the trace attributes every recorded
    round to ``tracer.current`` and the trace's ``dump_jsonl`` interleaves
    the span open/close events with the round records.

    A tracer without an attached trace still measures wall-clock per
    span (useful for charged-layer phases that send no messages).
    """

    def __init__(self, clock=time.perf_counter):
        self.spans: List[Span] = []
        #: chronological ``(record_index, "open"|"close", span)`` log —
        #: what ``dump_jsonl`` interleaves with the round records
        self.events: List[Any] = []
        #: optional request lineage (a ``repro.obs.events.TraceContext``
        #: or any object with a ``trace_id``) — see :meth:`bind_context`
        self.context = None
        self._stack: List[Span] = []
        self._trace = None
        self._clock = clock

    def attach(self, trace) -> Any:
        """Bind this tracer to a ``RoundTrace``; returns the trace."""
        trace.tracer = self
        self._trace = trace
        return trace

    def bind_context(self, context) -> None:
        """Stamp subsequent span events with a request's trace lineage.

        ``context`` is duck-typed (anything with a ``trace_id``
        attribute — in practice a :class:`repro.obs.events.TraceContext`;
        this module deliberately does not import it).  Sharded runs read
        the bound context off ``trace.tracer`` and propagate it to every
        shard worker, so merged ``RoundTrace`` spans keep their lineage.
        Binding is observational only: it never changes which rounds run
        or how they are attributed.
        """
        self.context = context

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside all spans."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span context manager; counters attribute to it while it
        is the innermost open span."""
        return Span(self, name, attrs)

    # -- span lifecycle (called by Span.__enter__/__exit__) ------------
    def _open(self, span: Span) -> None:
        if span.id:
            raise RuntimeError(f"span {span.name!r} entered twice")
        span.id = len(self.spans) + 1
        span.parent_id = self._stack[-1].id if self._stack else None
        span.depth = len(self._stack)
        span.open_at = len(self._trace.records) if self._trace is not None else 0
        span._t0 = self._clock()
        self.spans.append(span)
        self.events.append((span.open_at, "open", span))
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            innermost = self._stack[-1].name if self._stack else None
            raise RuntimeError(
                f"span {span.name!r} closed out of order "
                f"(innermost is {innermost!r})"
            )
        self._stack.pop()
        span.close_at = len(self._trace.records) if self._trace is not None else 0
        span.wall_s = self._clock() - span._t0
        self.events.append((span.close_at, "close", span))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(spans={len(self.spans)}, open={len(self._stack)})"


def trace_span(trace, name: str, **attrs: Any):
    """Span for the tracer attached to ``trace`` — or :data:`NULL_SPAN`.

    The hook the simulations use: ``with trace_span(trace, "bfs"):``.
    When ``trace`` is ``None`` or has no tracer attached, the shared
    no-op singleton comes back and **no span object is allocated**, so a
    sim that threads its ``trace=`` argument through pays nothing for the
    instrumentation until a user opts in via :meth:`Tracer.attach`.
    """
    tracer = getattr(trace, "tracer", None) if trace is not None else None
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)
