"""Observability for the CONGEST stack: spans, metrics, trace analysis.

Three sub-layers, all opt-in and all deterministic-by-construction (they
observe a run, they never steer it — ``run_fingerprint`` is bit-identical
with and without them):

* :mod:`.tracing` — phase attribution.  A :class:`Tracer` hands out
  nesting ``span(...)`` context managers; attached to a live
  :class:`repro.congest.trace.RoundTrace`, every round, message, word,
  lost/duplicated count and wall-clock interval is attributed to the
  *innermost* open span.  The five message-level sims and the resilient
  primitives open their own named spans, so a traced run decomposes into
  the paper's phases (embedding, weight aggregation, fragment merging,
  partwise aggregation, DFS stitching) without print statements.
* :mod:`.metrics` — a named counter/gauge/histogram registry with a
  Prometheus-style text exposition and a JSON export; fed per round by
  ``Network.run(metrics=...)`` (handler wall-clock, per-node dispatch
  counts, scheduler queue depth) and per unit by the experiment runner.
* :mod:`.analyze` — offline analysis of trace JSONL dumps, behind the
  ``repro trace summarize|phases|edges|diff`` CLI.
* :mod:`.events` — request-scoped tracing for the serve stack: a
  picklable :class:`TraceContext` carried through pool workers and shard
  engines, a :class:`RequestTrace` span recorder per served request, an
  :class:`EventLog` ring buffer of structured service events, and the
  causally-ordered ``serve-events`` JSONL behind
  ``repro trace serve timeline|critical-path|slow|summarize``.

The full model is documented in ``docs/OBSERVABILITY.md``.
"""

from .events import EventLog, RequestTrace, TraceContext, attribution_report
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import NULL_SPAN, Span, Tracer, trace_span

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "RequestTrace",
    "Span",
    "TraceContext",
    "Tracer",
    "attribution_report",
    "trace_span",
]
