"""Offline analysis of trace JSONL dumps — the ``repro trace`` backend.

Loads a dump written by :meth:`repro.congest.trace.RoundTrace.dump_jsonl`
into a structured document and renders:

* ``summarize`` — the aggregate view (rounds, messages, words, faults,
  worst offender, warnings, span count);
* ``phases`` — the span tree with *cumulative* (span + descendants) and
  *self* counters per phase, an ``(untraced)`` bucket for rounds recorded
  outside any span, and an attribution-completeness check line: the self
  counters plus the untraced remainder must sum **exactly** to the trace
  totals (they do by construction — see ``repro.obs.tracing``);
* ``edges`` — the top-k bandwidth edges by total words;
* ``diff`` — two traces compared phase by phase (matched on the span
  path ``parent/child[attrs]``), for before/after comparisons.

Everything here is pure functions over parsed JSON, so the CLI and the
tests share one code path.  The import of :func:`read_jsonl` is deferred
into :func:`load_dump` to keep :mod:`repro.obs` import-free of
:mod:`repro.congest` (congest imports obs, not the reverse).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "load_dump",
    "span_tree",
    "render_summary",
    "render_phases",
    "render_edges",
    "render_diff",
]

_COUNTERS = ("rounds", "messages", "words", "dropped", "lost", "duplicated")


def load_dump(path) -> Dict[str, Any]:
    """Parse a trace dump into ``{schema, rounds, warnings, edges, spans,
    summary}``.

    ``spans`` maps span id -> a merged record of its open event (name,
    attrs, nesting) and close event (self counters, wall-clock); a span
    that never closed keeps zeroed counters and ``closed=False``.
    """
    from ..congest.trace import read_jsonl

    doc: Dict[str, Any] = {
        "path": str(path),
        "schema": 1,
        "rounds": [],
        "warnings": [],
        "edges": [],
        "spans": {},
        "summary": None,
    }
    for rec in read_jsonl(path):
        kind = rec.get("kind")
        if kind == "schema":
            doc["schema"] = rec.get("version", 1)
        elif kind == "round":
            doc["rounds"].append(rec)
        elif kind == "warning":
            doc["warnings"].append(rec.get("message", ""))
        elif kind == "edge":
            doc["edges"].append(rec)
        elif kind == "span-open":
            doc["spans"][rec["id"]] = {
                "id": rec["id"],
                "parent": rec.get("parent"),
                "depth": rec.get("depth", 0),
                "name": rec.get("name", "?"),
                "attrs": rec.get("attrs", {}),
                "closed": False,
                "wall_s": 0.0,
                **{c: 0 for c in _COUNTERS},
            }
        elif kind == "span-close":
            span = doc["spans"].get(rec["id"])
            if span is None:  # close without open: tolerate, synthesize
                span = doc["spans"][rec["id"]] = {
                    "id": rec["id"], "parent": None, "depth": 0,
                    "name": "?", "attrs": {}, "closed": False, "wall_s": 0.0,
                    **{c: 0 for c in _COUNTERS},
                }
            span["closed"] = True
            span["wall_s"] = rec.get("wall_s", 0.0)
            for c in _COUNTERS:
                span[c] = rec.get(c, 0)
        elif kind == "summary":
            doc["summary"] = rec
    return doc


def _totals(doc: Dict[str, Any]) -> Dict[str, int]:
    """Trace totals recomputed from the round records (exact)."""
    out = {c: 0 for c in _COUNTERS}
    out["rounds"] = len(doc["rounds"])
    for rec in doc["rounds"]:
        for c in _COUNTERS[1:]:
            out[c] += rec.get(c, 0)
    return out


def span_tree(doc: Dict[str, Any]) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """The spans as roots-first tree nodes plus per-span cumulative sums.

    Returns ``(roots, untraced)`` where each tree node is the span record
    extended with ``children`` (a list of nodes) and ``cum`` (self plus
    all descendants, per counter), and ``untraced`` is the remainder of
    the trace totals not attributed to any span.
    """
    spans = doc["spans"]
    roots: List[Dict[str, Any]] = []
    for span in spans.values():
        span["children"] = []
    for span in sorted(spans.values(), key=lambda s: s["id"]):
        parent = spans.get(span["parent"])
        if parent is None:
            roots.append(span)
        else:
            parent["children"].append(span)

    def fill(span: Dict[str, Any]) -> Dict[str, int]:
        cum = {c: span[c] for c in _COUNTERS}
        for child in span["children"]:
            child_cum = fill(child)
            for c in _COUNTERS:
                cum[c] += child_cum[c]
        span["cum"] = cum
        span["cum_wall_s"] = span["wall_s"]  # wall-clock already includes children
        return cum

    attributed = {c: 0 for c in _COUNTERS}
    for root in roots:
        cum = fill(root)
        for c in _COUNTERS:
            attributed[c] += cum[c]
    totals = _totals(doc)
    untraced = {c: totals[c] - attributed[c] for c in _COUNTERS}
    return roots, untraced


def _label(span: Dict[str, Any]) -> str:
    attrs = span.get("attrs") or {}
    if not attrs:
        return span["name"]
    inner = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"{span['name']}[{inner}]"


def render_summary(doc: Dict[str, Any]) -> str:
    """The aggregate view, one ``key: value`` row per line."""
    totals = _totals(doc)
    summary = doc["summary"] or {}
    rows = [
        ("dump", doc["path"]),
        ("schema", doc["schema"]),
        ("runs", summary.get("runs", "?")),
        ("rounds", totals["rounds"]),
        ("messages", totals["messages"]),
        ("words", totals["words"]),
        ("dropped", totals["dropped"]),
        ("lost", totals["lost"]),
        ("duplicated", totals["duplicated"]),
        ("peak_active", summary.get("peak_active", "?")),
        ("max_words", summary.get("max_words", "?")),
        ("offender", summary.get("offender", None) or "-"),
        ("spans", len(doc["spans"])),
        ("edges_recorded", len(doc["edges"])),
        ("warnings", len(doc["warnings"])),
    ]
    width = max(len(k) for k, _ in rows)
    lines = [f"{k.rjust(width)}: {v}" for k, v in rows]
    lines.extend(f"{'warning'.rjust(width)}: {w}" for w in doc["warnings"])
    return "\n".join(lines)


def render_phases(doc: Dict[str, Any]) -> str:
    """The span tree with cumulative and self counters per phase."""
    roots, untraced = span_tree(doc)
    totals = _totals(doc)
    header = (
        f"{'phase':<44} {'rounds':>7} {'msgs':>8} {'words':>9} "
        f"{'wall_s':>9} {'self.r':>7} {'self.m':>8} {'self.w':>9}"
    )
    lines = [header, "-" * len(header)]

    def walk(span: Dict[str, Any], prefix: str, last: bool) -> None:
        branch = "" if not prefix and last is None else ("`- " if last else "|- ")
        label = f"{prefix}{branch}{_label(span)}"
        if not span["closed"]:
            label += " (open)"
        cum = span["cum"]
        lines.append(
            f"{label:<44} {cum['rounds']:>7} {cum['messages']:>8} "
            f"{cum['words']:>9} {span['cum_wall_s']:>9.4f} "
            f"{span['rounds']:>7} {span['messages']:>8} {span['words']:>9}"
        )
        deeper = prefix + ("   " if last else "|  ") if branch else prefix
        for i, child in enumerate(span["children"]):
            walk(child, deeper, i == len(span["children"]) - 1)

    for root in roots:
        walk(root, "", None)  # type: ignore[arg-type]
    if any(untraced.values()):
        lines.append(
            f"{'(untraced)':<44} {untraced['rounds']:>7} "
            f"{untraced['messages']:>8} {untraced['words']:>9} {'-':>9} "
            f"{untraced['rounds']:>7} {untraced['messages']:>8} "
            f"{untraced['words']:>9}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<44} {totals['rounds']:>7} {totals['messages']:>8} "
        f"{totals['words']:>9}"
    )
    attributed = {
        c: totals[c] - untraced[c] for c in ("rounds", "messages", "words")
    }
    complete = all(
        attributed[c] + untraced[c] == totals[c]
        for c in ("rounds", "messages", "words")
    )
    lines.append(
        "attribution: spans + untraced == totals "
        + ("(complete, non-overlapping)" if complete else "(MISMATCH!)")
    )
    return "\n".join(lines)


def render_edges(doc: Dict[str, Any], k: int = 10) -> str:
    """The ``k`` heaviest directed edges by total words."""
    edges = sorted(
        doc["edges"], key=lambda e: (-e.get("words", 0), str(e.get("src")))
    )[:k]
    if not edges:
        return "no edge records in dump (re-dump with edge histograms enabled)"
    header = f"{'edge':<36} {'msgs':>7} {'words':>8} {'max_w':>6}  histogram"
    lines = [header, "-" * len(header)]
    for e in edges:
        hist = e.get("hist", {})
        hist_s = " ".join(f"{w}w:{hist[w]}" for w in sorted(hist, key=int))
        lines.append(
            f"{str(e.get('src')) + ' -> ' + str(e.get('dst')):<36} "
            f"{e.get('messages', 0):>7} {e.get('words', 0):>8} "
            f"{e.get('max_words', 0):>6}  {hist_s}"
        )
    return "\n".join(lines)


def _phase_index(doc: Dict[str, Any]) -> Dict[str, Dict[str, int]]:
    """Span name-path -> summed self counters.

    Keyed on names only (attrs carry per-instance values like ``n=`` that
    would stop any phase from matching across two runs); spans sharing a
    path — merge iterations, Borůvka phases — aggregate.
    """
    spans = doc["spans"]

    def path(span: Dict[str, Any]) -> str:
        parts = [span["name"]]
        parent = spans.get(span["parent"])
        while parent is not None:
            parts.append(parent["name"])
            parent = spans.get(parent["parent"])
        return "/".join(reversed(parts))

    out: Dict[str, Dict[str, int]] = {}
    for span in spans.values():
        key = path(span)
        acc = out.setdefault(key, {c: 0 for c in _COUNTERS} | {"wall_s": 0.0})
        for c in _COUNTERS:
            acc[c] += span[c]
        acc["wall_s"] += span["wall_s"]
    return out


def render_diff(doc_a: Dict[str, Any], doc_b: Dict[str, Any]) -> str:
    """Phase-by-phase comparison of two traces (self counters)."""
    a, b = _phase_index(doc_a), _phase_index(doc_b)
    keys = sorted(set(a) | set(b))
    header = (
        f"{'phase':<52} {'rounds A':>8} {'rounds B':>8} {'Δr':>6} "
        f"{'msgs A':>8} {'msgs B':>8} {'Δm':>7}"
    )
    lines = [
        f"A: {doc_a['path']}",
        f"B: {doc_b['path']}",
        header,
        "-" * len(header),
    ]
    for key in keys:
        ra = a.get(key, {}).get("rounds", 0)
        rb = b.get(key, {}).get("rounds", 0)
        ma = a.get(key, {}).get("messages", 0)
        mb = b.get(key, {}).get("messages", 0)
        mark = "" if key in a and key in b else ("  [only A]" if key in a else "  [only B]")
        lines.append(
            f"{key:<52} {ra:>8} {rb:>8} {rb - ra:>+6} "
            f"{ma:>8} {mb:>8} {mb - ma:>+7}{mark}"
        )
    ta, tb = _totals(doc_a), _totals(doc_b)
    lines.append("-" * len(header))
    lines.append(
        f"{'total':<52} {ta['rounds']:>8} {tb['rounds']:>8} "
        f"{tb['rounds'] - ta['rounds']:>+6} {ta['messages']:>8} "
        f"{tb['messages']:>8} {tb['messages'] - ta['messages']:>+7}"
    )
    return "\n".join(lines)
