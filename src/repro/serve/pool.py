"""Worker supervision for ``repro serve``: restartable pool + breaker.

``concurrent.futures.ProcessPoolExecutor`` treats a dead worker as fatal:
one SIGKILL poisons every in-flight future with ``BrokenProcessPool`` and
the executor is unusable forever after.  :class:`SupervisedPool` wraps it
with the recovery loop a long-running service needs:

* **generations** — each executor is one generation; detecting a broken
  generation swaps in a fresh executor exactly once (concurrent
  observers of the same corpse coordinate via the generation counter);
* **exponential backoff** — consecutive deaths space the restarts out
  (``backoff_base * 2**k``, capped), so a crash-looping workload cannot
  turn the supervisor into a fork bomb; a completed job resets the
  streak;
* **chaos hooks** — :meth:`worker_pids` / :meth:`kill_worker` expose the
  real worker processes so the chaos harness can murder one mid-request
  (SIGKILL, no cleanup) and the test suite can verify nothing is
  orphaned after :meth:`shutdown`.

:class:`CircuitBreaker` is the fast-fail companion: repeated worker
deaths trip it open (503 without touching the pool), a cooldown admits
one half-open probe, and a probe success closes it again.  The cooldown
is wall-clock by default; ``cooldown_rejects`` switches it to
request-count so seeded chaos campaigns stay deterministic.
"""

from __future__ import annotations

import concurrent.futures
import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional

__all__ = ["BROKEN_POOL", "CircuitBreaker", "SupervisedPool"]

#: Exception types that mean "the pool is dead, not the job".
BROKEN_POOL = (BrokenProcessPool, concurrent.futures.BrokenExecutor)


class SupervisedPool:
    """A ``ProcessPoolExecutor`` that survives its workers.

    Parameters
    ----------
    workers:
        Worker process count per generation.
    backoff_base:
        Base restart delay in seconds (0 disables sleeping — the chaos
        harness and the test suite run with 0 to stay fast and
        deterministic).
    backoff_cap:
        Ceiling for the exponential restart delay.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.generation = 0
        self.restarts = 0
        self.death_streak = 0
        self._closed = False
        #: Optional structured-event sink ``(type, **fields)`` — the
        #: engine points this at its :class:`repro.obs.events.EventLog`
        #: so restarts and chaos kills land in the serve-events stream.
        self.on_event: Optional[Callable[..., object]] = None
        self._pool = self._spawn()

    def _emit(self, type_: str, **fields) -> None:
        if self.on_event is not None:
            self.on_event(type_, **fields)

    # ------------------------------------------------------------------
    def _spawn(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=self.workers)

    def submit(self, fn: Callable, *args) -> concurrent.futures.Future:
        """Submit a job to the current generation.

        A submit that finds the executor already broken raises
        :class:`BrokenProcessPool` just like a poisoned future would, so
        callers have exactly one failure path to supervise.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        try:
            return self._pool.submit(fn, *args)
        except RuntimeError as exc:  # executor broken or shutting down
            raise BrokenProcessPool(str(exc)) from exc

    def note_success(self) -> None:
        """A job finished: the current generation is healthy, reset the
        death streak so the next restart (if any) starts backoff fresh."""
        self.death_streak = 0

    def backoff_delay(self) -> float:
        """The restart delay the *next* :meth:`restart` deserves."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** self.death_streak))

    def restart(self, generation: Optional[int] = None) -> bool:
        """Replace a broken generation with a fresh executor.

        ``generation`` is the generation the caller observed dying; when
        another caller already performed the swap the call is a no-op
        (returns ``False``).  The caller is responsible for awaiting
        :meth:`backoff_delay` first — the supervisor itself never sleeps,
        so an asyncio service can back off without blocking its loop.
        """
        if self._closed:
            return False
        if generation is not None and generation != self.generation:
            return False
        old = self._pool
        self.generation += 1
        self.restarts += 1
        self.death_streak += 1
        self._pool = self._spawn()
        old.shutdown(wait=False, cancel_futures=True)
        self._reap(old)
        self._emit("pool-restart", generation=self.generation, restarts=self.restarts)
        return True

    @staticmethod
    def _reap(pool: concurrent.futures.ProcessPoolExecutor) -> None:
        """Make sure a retired generation leaves no orphan processes."""
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=1.0)

    # -- chaos hooks ----------------------------------------------------
    def worker_pids(self) -> List[int]:
        """PIDs of the current generation's live workers (spawned lazily
        by the executor — empty until the first submit)."""
        return sorted(
            pid
            for pid, proc in (getattr(self._pool, "_processes", None) or {}).items()
            if proc.is_alive()
        )

    def kill_worker(self, pid: Optional[int] = None) -> Optional[int]:
        """SIGKILL one worker (the lowest PID by default); returns the
        killed PID or ``None`` when no worker is up yet.  This is the
        chaos harness's fault injector — the service must recover."""
        pids = self.worker_pids()
        if not pids:
            return None
        target = pid if pid is not None else pids[0]
        try:
            os.kill(target, signal.SIGKILL)
        except ProcessLookupError:  # already gone
            return None
        self._emit("worker-kill", pid=target, generation=self.generation)
        return target

    def kill_all_workers(self) -> int:
        """SIGKILL the whole generation (wedged-pool recovery)."""
        killed = 0
        for pid in self.worker_pids():
            if self.kill_worker(pid) is not None:
                killed += 1
        return killed

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the pool and join every worker (idempotent; after this
        :meth:`worker_pids` is empty and nothing is orphaned)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True, cancel_futures=True)
        self._reap(self._pool)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SupervisedPool(workers={self.workers}, "
            f"generation={self.generation}, restarts={self.restarts})"
        )


class CircuitBreaker:
    """Three-state breaker over worker health: closed → open → half-open.

    ``record_failure`` counts worker deaths; ``failure_threshold`` deaths
    without an intervening success trip the breaker **open** — every
    :meth:`allow` fast-fails until the cooldown elapses, then exactly one
    probe is admitted (**half-open**); its success closes the breaker,
    its failure re-opens it with a fresh cooldown.

    The cooldown is ``cooldown_s`` of wall clock, or — when
    ``cooldown_rejects`` is set — that many rejected :meth:`allow` calls,
    which is the deterministic mode the seeded chaos campaign runs in
    (request counts replay; clocks do not).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        cooldown_rejects: Optional[int] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.cooldown_rejects = cooldown_rejects
        self.state = "closed"
        self.failures = 0
        self.opens = 0
        self._opened_at = 0.0
        self._rejects_since_open = 0
        self._probing = False

    def _cooled_down(self) -> bool:
        if self.cooldown_rejects is not None:
            return self._rejects_since_open >= self.cooldown_rejects
        return time.monotonic() - self._opened_at >= self.cooldown_s

    def allow(self) -> bool:
        """May a request touch the pool right now?"""
        if self.state == "closed":
            return True
        if self.state == "open" and self._cooled_down():
            self.state = "half-open"
            self._probing = False
        if self.state == "half-open" and not self._probing:
            self._probing = True  # exactly one probe in flight
            return True
        self._rejects_since_open += 1
        return False

    def record_success(self) -> None:
        """A pool interaction succeeded; a half-open probe closes the
        breaker, and any success clears the failure streak."""
        self.failures = 0
        if self.state != "closed":
            self.state = "closed"
        self._probing = False

    def record_failure(self) -> None:
        """A worker died under a request."""
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        if self.state != "open":
            self.opens += 1
        self.state = "open"
        self.failures = 0
        self._opened_at = time.monotonic()
        self._rejects_since_open = 0
        self._probing = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"
