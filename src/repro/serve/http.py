"""Minimal asyncio HTTP front end for the serve engine (stdlib only).

The container this repo targets has no HTTP framework, and the service
needs very little of one: four routes, small JSON bodies, one response
per connection.  :class:`ServeServer` implements exactly that on
``asyncio.start_server`` — request line + headers + Content-Length body
in, ``Connection: close`` response out — and leaves every interesting
decision to :class:`~repro.serve.engine.ServeEngine`:

* ``POST /jobs`` — submit a job (body per :func:`repro.serve.jobs.parse_job`);
  an ``X-Deadline-S`` header lowers the per-request deadline;
* ``GET /healthz`` — liveness (200 while the process can serve at all);
* ``GET /readyz`` — readiness (503 while draining or breaker-open, the
  signal a load balancer uses to stop routing here);
* ``GET /metrics`` — Prometheus text exposition of the engine registry;
* ``GET /statusz`` — operator snapshot: breaker state, pool generation,
  queue depth, in-flight count, latency quantiles and the last N
  structured events from the engine's ring buffer.

When the engine runs with ``trace_requests``, an ``X-Trace-Id`` request
header adopts the client's trace id (loadgen mints deterministic ones)
and every ``POST /jobs`` response carries ``X-Trace-Id`` back; at
shutdown the server flushes the causally-ordered ``serve-events`` JSONL
to ``events_path``.

``SIGTERM``/``SIGINT`` trigger the graceful ladder: stop admitting
(readyz goes red, new jobs 503 ``draining``), wait for in-flight
requests, shut the pool down orphan-free, flush ``metrics.prom``.

:func:`http_request` is the matching client — loadgen, CI smoke and the
tests use it so the whole stack stays dependency-free.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple

from .engine import ServeConfig, ServeEngine, ServeResponse

__all__ = ["ServeServer", "http_request", "run_server"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: Request bodies past this are refused unread (413) — admission control
#: for bytes, before the job parser's caps see them.
MAX_BODY = 4 * 1024 * 1024


class ServeServer:
    """One engine behind one listening socket."""

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 8750,
        *,
        metrics_path: Optional[str] = None,
        events_path: Optional[str] = None,
    ):
        self.engine = engine
        self.host = host
        self.port = port
        self.metrics_path = metrics_path
        self.events_path = events_path
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        # Port 0 means "pick one"; record what the kernel chose.
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`), then
        drain gracefully."""
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self._stop.set)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-POSIX loop: Ctrl-C still lands as KeyboardInterrupt
        await self._stop.wait()
        await self.shutdown()

    def request_stop(self) -> None:
        self._stop.set()

    async def shutdown(self) -> None:
        """The SIGTERM ladder: stop admitting, drain, flush, close."""
        self.engine.draining = True  # readyz red + 503s before the drain wait
        if self._server is not None:
            self._server.close()
        await self.engine.drain()
        if self._server is not None:
            await self._server.wait_closed()
        if self.metrics_path:
            with open(self.metrics_path, "w") as fh:
                fh.write(self.engine.metrics.to_prometheus())
        if self.events_path:
            self.engine.flush_events(self.events_path)

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
        except Exception as exc:  # a broken request must not kill the server
            response = ServeResponse(400, {"status": "invalid", "error": str(exc)})
        try:
            await self._write(writer, response)
        except (ConnectionError, BrokenPipeError):
            pass  # client went away mid-response; its problem
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> ServeResponse:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return ServeResponse(400, {"status": "invalid", "error": "bad request line"})
        method, path = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        if method == "GET":
            if path == "/healthz":
                ok = self.engine.healthy()
                return ServeResponse(200 if ok else 503, {"status": "ok" if ok else "down"})
            if path == "/readyz":
                ready = self.engine.ready()
                body = {"status": "ready" if ready else "not-ready"}
                if not ready:
                    body["reason"] = (
                        "draining" if self.engine.draining else "breaker-open"
                    )
                return ServeResponse(200 if ready else 503, body)
            if path == "/metrics":
                return ServeResponse(200, {"_raw": self.engine.metrics.to_prometheus()})
            if path == "/statusz":
                return ServeResponse(200, self.engine.statusz())
            return ServeResponse(404, {"status": "invalid", "error": f"no route {path}"})
        if method == "POST" and path == "/jobs":
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY:
                return ServeResponse(
                    413, {"status": "invalid", "error": f"body {length} > {MAX_BODY}"}
                )
            raw = await reader.readexactly(length) if length else b""
            try:
                payload = json.loads(raw.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return ServeResponse(400, {"status": "invalid", "error": f"bad JSON: {exc}"})
            deadline_s = None
            if "x-deadline-s" in headers:
                try:
                    deadline_s = float(headers["x-deadline-s"])
                except ValueError:
                    return ServeResponse(
                        400, {"status": "invalid", "error": "bad X-Deadline-S"}
                    )
            trace_id = headers.get("x-trace-id") or None
            return await self.engine.submit(
                payload, deadline_s=deadline_s, trace_id=trace_id
            )
        return ServeResponse(405, {"status": "invalid", "error": f"{method} {path}"})

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, response: ServeResponse) -> None:
        if "_raw" in response.body:  # /metrics: text exposition, not JSON
            payload = response.body["_raw"].encode()
            ctype = "text/plain; version=0.0.4"
        else:
            payload = json.dumps(response.body).encode()
            ctype = "application/json"
        reason = _REASONS.get(response.code, "Unknown")
        head = [
            f"HTTP/1.1 {response.code} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in response.headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Any = None,
    *,
    headers: Optional[Dict[str, str]] = None,
    timeout_s: float = 60.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP exchange against a :class:`ServeServer` (or anything
    speaking close-delimited HTTP/1.1); returns (code, headers, body)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout_s
    )
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in (headers or {}).items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        # Read to the framed length, never to EOF: the server's worker
        # processes fork while connections are open and inherit the fds,
        # so EOF can lag the parent's close() by a worker lifetime.
        head_blob = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout_s
        )
        lines = head_blob.decode("latin-1").strip().split("\r\n")
        code = int(lines[0].split()[1])
        resp_headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0") or "0")
        body_blob = (
            await asyncio.wait_for(reader.readexactly(length), timeout_s)
            if length
            else b""
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
    return code, resp_headers, body_blob


async def run_server(
    config: ServeConfig,
    host: str = "127.0.0.1",
    port: int = 8750,
    *,
    metrics_path: Optional[str] = None,
    events_path: Optional[str] = None,
    announce=print,
) -> None:
    """CLI entry: build engine + server, announce the bound port, serve
    until a stop signal, drain."""
    engine = ServeEngine(config)
    server = ServeServer(
        engine, host, port, metrics_path=metrics_path, events_path=events_path
    )
    await server.start()
    announce(f"repro serve listening on http://{server.host}:{server.port}")
    await server.run()
