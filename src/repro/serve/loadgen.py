"""Seeded load generation for ``repro serve`` → ``BENCH_SERVE.json``.

The workload is a deterministic function of its seed: a small *catalog*
of jobs (mixed families and sizes, so worker cost varies) queried under a
zipf rank distribution — a few hot jobs repeat constantly (exercising the
content-addressed result cache), a long tail stays cold.  Two driving
modes:

* **closed-loop** (default) — ``concurrency`` virtual users each issue
  the next request as soon as the previous one resolves: throughput
  follows service capacity, the classic saturation probe;
* **open-loop** — ``rate`` arrivals per second regardless of completions:
  the overload probe that drives the server past capacity and must come
  back as bounded 429 shedding, not collapse.

The emitted ``BENCH_SERVE.json`` carries client-side truth (throughput,
p50/p90/p99 of *accepted* requests, status histogram, cache-hit rate) and
server-side truth (shed/retry/restart/breaker counters scraped from
``/metrics`` — which doubles as the "exposition parses" check), plus the
repo's standard git-SHA/timestamp provenance.  :func:`serve_metrics`
mirrors the headline numbers as ``repro_serve_*`` metrics for
``summary_dict(extra_metrics=...)`` — joining the benchmark trajectory
without touching the ``--compare`` gate, exactly like ``repro_chaos_*``.
"""

from __future__ import annotations

import asyncio
import json
import math
import pathlib
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.provenance import provenance
from ..obs.metrics import MetricsRegistry
from .engine import ServeEngine
from .http import http_request

__all__ = [
    "LoadgenConfig",
    "EngineTarget",
    "HttpTarget",
    "build_catalog",
    "parse_prometheus",
    "run_loadgen",
    "serve_metrics",
    "write_bench",
]

SCHEMA_VERSION = 1


@dataclass
class LoadgenConfig:
    """One workload definition (everything the bench provenance records)."""

    seed: int = 1
    #: Stop after this many seconds (0 = stop on ``total_requests``).
    duration_s: float = 5.0
    total_requests: int = 0
    #: Closed-loop virtual users (ignored when ``rate`` > 0).
    concurrency: int = 4
    #: Open-loop arrivals per second (> 0 switches modes).
    rate: float = 0.0
    #: Zipf exponent for catalog rank popularity.
    zipf_s: float = 1.2
    catalog_size: int = 24
    families: Tuple[str, ...] = (
        "grid", "tri-grid", "delaunay", "random-planar", "outerplanar"
    )
    #: Instance sizes to mix (small = fast, large = slow workers).
    sizes: Tuple[int, ...] = (24, 48, 96, 180)
    #: Per-request deadline override (None = server default).
    deadline_s: Optional[float] = None
    #: Mint a deterministic ``lg-{seed}-{seq:06d}`` trace id per request
    #: and send it with the job (``X-Trace-Id`` over HTTP), so the
    #: server's serve-events log attributes every loadgen request.
    #: Deliberately **not** part of :meth:`describe`: the bench is
    #: bit-identical with tracing on or off, and the workload identity
    #: must not change when observability does.
    trace: bool = False

    def describe(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "total_requests": self.total_requests,
            "concurrency": self.concurrency,
            "rate": self.rate,
            "zipf_s": self.zipf_s,
            "catalog_size": self.catalog_size,
            "families": list(self.families),
            "sizes": list(self.sizes),
            "deadline_s": self.deadline_s,
        }


def build_catalog(config: LoadgenConfig) -> List[Dict[str, Any]]:
    """The job catalog: ``catalog_size`` distinct generator jobs drawn
    deterministically from the configured families × sizes."""
    rng = random.Random(config.seed)
    catalog = []
    for i in range(config.catalog_size):
        catalog.append(
            {
                "family": rng.choice(config.families),
                "n": rng.choice(config.sizes),
                "seed": rng.randrange(1000),
                "root": 0,
            }
        )
    return catalog


def _zipf_weights(k: int, s: float) -> List[float]:
    return [1.0 / (rank + 1) ** s for rank in range(k)]


class EngineTarget:
    """Drive a :class:`ServeEngine` in-process (tests, chaos, self-contained
    benches) — no sockets, same request semantics."""

    def __init__(self, engine: ServeEngine):
        self.engine = engine

    async def submit(
        self,
        payload: Dict[str, Any],
        deadline_s: Optional[float],
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        resp = await self.engine.submit(
            payload, deadline_s=deadline_s, trace_id=trace_id
        )
        return resp.code, resp.body

    async def server_counters(self) -> Dict[str, float]:
        s = self.engine.stats()
        return {
            "shed": s["shed"],
            "retries": s["retries"],
            "worker_restarts": s["worker_restarts"],
            "breaker_opens": s["breaker_opens"],
            "cache_hits": s["cache_hits"],
        }

    async def server_quantiles(self) -> Dict[str, float]:
        return dict(self.engine.latency_quantiles())


class HttpTarget:
    """Drive a running server over HTTP (the CI smoke path)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    async def submit(
        self,
        payload: Dict[str, Any],
        deadline_s: Optional[float],
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        headers = {}
        if deadline_s is not None:
            headers["X-Deadline-S"] = f"{deadline_s:g}"
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        code, _, raw = await http_request(
            self.host, self.port, "POST", "/jobs", payload, headers=headers
        )
        try:
            body = json.loads(raw.decode() or "{}")
        except json.JSONDecodeError:
            body = {"status": "invalid", "error": "unparseable body"}
        return code, body

    async def server_counters(self) -> Dict[str, float]:
        _, _, raw = await http_request(self.host, self.port, "GET", "/metrics")
        samples = parse_prometheus(raw.decode())
        return {
            "shed": samples.get("serve_shed_total", 0),
            "retries": samples.get("serve_retries_total", 0),
            "worker_restarts": samples.get("serve_worker_restarts_total", 0),
            "breaker_opens": samples.get("serve_breaker_open_total", 0),
            "cache_hits": samples.get("serve_cache_hits_total", 0),
        }

    async def server_quantiles(self) -> Dict[str, float]:
        _, _, raw = await http_request(self.host, self.port, "GET", "/statusz")
        try:
            body = json.loads(raw.decode() or "{}")
        except json.JSONDecodeError:
            return {}
        return body.get("latency_s", {})


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse a text exposition into ``name{labels} -> value`` (labelled
    samples keep their brace group; a name's label values also sum into
    the bare name).  Raises ``ValueError`` on a malformed sample line —
    the CI smoke job leans on that as its "metrics parses" assertion."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        value = float(value_part)  # ValueError on garbage = parse failure
        samples[name_part] = samples.get(name_part, 0.0) + value
        if "{" in name_part:
            bare = name_part.split("{", 1)[0]
            samples[bare] = samples.get(bare, 0.0) + value
    return samples


def _percentile(sorted_values: List[float], p: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(p * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


async def run_loadgen(config: LoadgenConfig, target) -> Dict[str, Any]:
    """Run the workload against ``target`` and return the bench dict."""
    catalog = build_catalog(config)
    weights = _zipf_weights(len(catalog), config.zipf_s)
    rng = random.Random(config.seed + 1)  # pick stream, distinct from catalog
    samples: List[Dict[str, Any]] = []
    issued = 0
    started = time.monotonic()

    def stop_now() -> bool:
        if config.total_requests and issued >= config.total_requests:
            return True
        return bool(
            config.duration_s and time.monotonic() - started >= config.duration_s
        )

    def mint_trace_id() -> Optional[str]:
        # Deterministic client-side lineage: the trace id is a function
        # of (seed, issue order), so re-running the same workload names
        # the same requests — serve-events logs from two runs line up.
        if not config.trace:
            return None
        return f"lg-{config.seed}-{issued:06d}"

    async def one(payload: Dict[str, Any], trace_id: Optional[str]) -> None:
        t0 = time.monotonic()
        code, body = await target.submit(payload, config.deadline_s, trace_id)
        samples.append(
            {
                "status": body.get("status", f"http-{code}"),
                "code": code,
                "latency_s": time.monotonic() - t0,
                "cached": bool(body.get("cached")),
            }
        )

    if config.rate > 0:  # open loop: arrivals on a clock
        interval = 1.0 / config.rate
        tasks = []
        while not stop_now():
            issued += 1
            tasks.append(
                asyncio.ensure_future(
                    one(rng.choices(catalog, weights)[0], mint_trace_id())
                )
            )
            await asyncio.sleep(interval)
        if tasks:
            await asyncio.gather(*tasks)
    else:  # closed loop: vusers back to back
        async def vuser() -> None:
            nonlocal issued
            while not stop_now():
                issued += 1
                await one(rng.choices(catalog, weights)[0], mint_trace_id())

        await asyncio.gather(*(vuser() for _ in range(max(1, config.concurrency))))

    wall_s = time.monotonic() - started
    status_counts: Dict[str, int] = {}
    for s in samples:
        status_counts[s["status"]] = status_counts.get(s["status"], 0) + 1
    accepted = sorted(s["latency_s"] for s in samples if s["code"] == 200)
    n_ok = len(accepted)
    n_cached = sum(1 for s in samples if s["code"] == 200 and s["cached"])
    server = await target.server_counters()
    quantiles = getattr(target, "server_quantiles", None)
    server_latency = await quantiles() if quantiles is not None else {}
    return {
        "schema_version": SCHEMA_VERSION,
        **provenance(),
        "workload": config.describe(),
        "mode": "open" if config.rate > 0 else "closed",
        "requests": len(samples),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(samples) / wall_s, 3) if wall_s else 0.0,
        "status_counts": status_counts,
        "latency_s": {
            "p50": round(_percentile(accepted, 0.50), 6),
            "p90": round(_percentile(accepted, 0.90), 6),
            "p99": round(_percentile(accepted, 0.99), 6),
            "mean": round(sum(accepted) / n_ok, 6) if n_ok else 0.0,
            "max": round(accepted[-1], 6) if accepted else 0.0,
        },
        "cache_hit_rate": round(n_cached / n_ok, 4) if n_ok else 0.0,
        "server": server,
        # Server-side view of the same latencies, computed by
        # Histogram.quantile over serve_request_seconds — present with
        # tracing on or off, so the bench schema never varies with it.
        "server_latency_s": server_latency,
    }


def serve_metrics(bench: Dict[str, Any]) -> MetricsRegistry:
    """``repro_serve_*`` mirror of one bench — the ``extra_metrics``
    payload for ``summary_dict`` (inert to ``--compare``, which only
    reads the ``experiments`` block)."""
    reg = MetricsRegistry()
    requests = reg.counter(
        "repro_serve_requests_total",
        "Loadgen requests by terminal status",
        labels=("status",),
    )
    for status, count in sorted(bench.get("status_counts", {}).items()):
        requests.inc(count, status=status)
    reg.gauge(
        "repro_serve_throughput_rps", "Loadgen observed throughput"
    ).set(bench.get("throughput_rps", 0.0))
    latency = reg.gauge(
        "repro_serve_latency_seconds",
        "Accepted-request latency quantiles",
        labels=("quantile",),
    )
    for q in ("p50", "p90", "p99"):
        latency.set(bench.get("latency_s", {}).get(q, 0.0), quantile=q)
    reg.gauge(
        "repro_serve_cache_hit_rate", "Fraction of 200s served from cache"
    ).set(bench.get("cache_hit_rate", 0.0))
    server = bench.get("server", {})
    for key, metric in (
        ("shed", "repro_serve_shed_total"),
        ("retries", "repro_serve_retries_total"),
        ("worker_restarts", "repro_serve_worker_restarts_total"),
        ("breaker_opens", "repro_serve_breaker_open_total"),
    ):
        if server.get(key):
            reg.counter(metric, f"Server-side {key} over the loadgen run").inc(
                server[key]
            )
    return reg


def write_bench(
    bench: Dict[str, Any],
    path: "pathlib.Path | str",
    *,
    results_dir: "pathlib.Path | str | None" = None,
) -> List[pathlib.Path]:
    """Write ``BENCH_SERVE.json``; with ``results_dir``, also merge the
    ``repro_serve_*`` families into its ``metrics.prom`` (keeping every
    other family — the same share-the-exposition contract as
    :func:`repro.chaos.campaign.write_campaign`)."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bench, indent=2, default=str) + "\n")
    written = [path]
    if results_dir is not None:
        prom_path = pathlib.Path(results_dir) / "metrics.prom"
        prom_path.parent.mkdir(parents=True, exist_ok=True)
        kept = ""
        if prom_path.exists():
            kept = "".join(
                line
                for line in prom_path.read_text().splitlines(keepends=True)
                if "repro_serve_" not in line
            )
            if kept and not kept.endswith("\n"):
                kept += "\n"
        prom_path.write_text(kept + serve_metrics(bench).to_prometheus())
        written.append(prom_path)
    return written
