"""Job model for ``repro serve``: parse, validate, execute, certify.

A *job* asks for the paper's full pipeline on one instance — cycle
separator (Theorem 1), DFS tree (Theorem 2) and the cycle certificate —
and comes in two shapes:

* **generator jobs** — ``{"family": "delaunay", "n": 120, "seed": 3}``
  name a seeded instance from the CLI's generator families, so a client
  never ships a graph it can describe;
* **edge-list jobs** — ``{"edges": [[0, 1], [1, 2], ...], "root": 0}``
  ship the graph itself (validated: connected, planar, within the size
  cap).

Either shape may additionally carry ``"updates"`` — an ordered list of
``["insert"|"delete", u, v]`` mutations applied to the instance *before*
the pipeline answers (the dynamic-graph job mode).  Updates run through
:class:`repro.dynamic.repair.DynamicPipeline` in one batch, so the
response reflects the incrementally repaired (and oracle-checked)
post-update state, and the ``"dynamic"`` payload block reports the
repair statistics.  The updates are part of :meth:`JobSpec.canonical`
— and therefore of the content-addressed :meth:`JobSpec.key` — because
they change the graph the answer is about: two jobs differing only in
their update sequence must never share a cache entry.

:func:`parse_job` normalizes either shape into a :class:`JobSpec` whose
:meth:`JobSpec.key` is a content-addressed digest — the idempotency token
the service's result cache (:mod:`repro.analysis.cache`) and its bounded
retry-after-worker-death machinery both key on: re-executing a job is
always safe because the algorithms are deterministic, and re-executing a
*finished* job is free because the cache already holds the result.

:func:`run_job` is the worker-pool entry point (module-level, picklable).
It runs the pipeline **and the oracles**: every ``"ok"`` payload has
already passed ``check_separator`` and ``check_dfs_tree`` inside the
worker, so a degraded service can never hand out an unverified answer —
the contract the chaos harness (:mod:`repro.chaos.serve_chaos`)
re-checks from the outside.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "JobError",
    "JobSpec",
    "MAX_EDGES",
    "MAX_N",
    "MAX_UPDATES",
    "parse_job",
    "run_job",
    "verify_result",
]

#: Hard caps on accepted work — admission control starts at the parser
#: (a 10^7-node job is a denial of service, not a request).
MAX_N = 20_000
MAX_EDGES = 60_000
MAX_UPDATES = 2_000


class JobError(ValueError):
    """A malformed or oversized job request (an HTTP 400, not a crash)."""


@dataclass(frozen=True)
class JobSpec:
    """One validated job: a generator reference or an explicit edge list."""

    kind: str  # "generator" | "edges"
    family: Optional[str] = None
    n: int = 0
    seed: int = 0
    root: int = 0
    edges: Tuple[Tuple[int, int], ...] = ()
    updates: Tuple[Tuple[str, int, int], ...] = ()

    def canonical(self) -> Dict[str, Any]:
        """The JSON-stable identity of the job (what the key digests).

        ``updates`` determine the post-update graph state the job answers
        about, so they are part of the identity whenever present — and
        absent otherwise, keeping static jobs' keys (and their cached
        results) stable across this extension.
        """
        if self.kind == "generator":
            out = {
                "kind": "generator",
                "family": self.family,
                "n": self.n,
                "seed": self.seed,
                "root": self.root,
            }
        else:
            out = {
                "kind": "edges",
                "edges": [list(e) for e in self.edges],
                "root": self.root,
            }
        if self.updates:
            out["updates"] = [list(u) for u in self.updates]
        return out

    def key(self) -> str:
        """Content-addressed job identity (idempotency/cache token)."""
        blob = json.dumps(self.canonical(), sort_keys=True)
        return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


def _require_int(payload: Dict[str, Any], name: str, default: int, lo: int, hi: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobError(f"{name!r} must be an integer, got {type(value).__name__}")
    if not lo <= value <= hi:
        raise JobError(f"{name!r} must be in [{lo}, {hi}], got {value}")
    return value


def _parse_updates(payload: Dict[str, Any]) -> Tuple[Tuple[str, int, int], ...]:
    updates = payload.get("updates", ())
    if not isinstance(updates, (list, tuple)):
        raise JobError("'updates' must be a list of [op, u, v] triples")
    if len(updates) > MAX_UPDATES:
        raise JobError(f"too many updates ({len(updates)} > {MAX_UPDATES})")
    normalized = []
    for entry in updates:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise JobError(f"update {entry!r} is not an [op, u, v] triple")
        op, u, v = entry
        if op not in ("insert", "delete"):
            raise JobError(f"update op must be 'insert' or 'delete', got {op!r}")
        if any(isinstance(x, bool) or not isinstance(x, int) for x in (u, v)):
            raise JobError(f"update {entry!r} endpoints must be integers")
        if u == v:
            raise JobError(f"self-loop update {entry!r} is not allowed")
        normalized.append((op, u, v))
    return tuple(normalized)


def parse_job(payload: Any) -> JobSpec:
    """Validate a request body into a :class:`JobSpec`; raises
    :class:`JobError` with a client-facing message on any defect."""
    from ..cli import FAMILY_MAKERS

    if not isinstance(payload, dict):
        raise JobError("job body must be a JSON object")
    updates = _parse_updates(payload)
    if "edges" in payload:
        edges = payload["edges"]
        if not isinstance(edges, list) or not edges:
            raise JobError("'edges' must be a non-empty list of [u, v] pairs")
        if len(edges) > MAX_EDGES:
            raise JobError(f"too many edges ({len(edges)} > {MAX_EDGES})")
        normalized = []
        for e in edges:
            if (
                not isinstance(e, (list, tuple))
                or len(e) != 2
                or any(isinstance(x, bool) or not isinstance(x, int) for x in e)
            ):
                raise JobError(f"edge {e!r} is not a pair of integers")
            if e[0] == e[1]:
                raise JobError(f"self-loop {e!r} is not allowed")
            normalized.append((min(e), max(e)))
        root = _require_int(payload, "root", 0, 0, MAX_N)
        return JobSpec(
            kind="edges", root=root, edges=tuple(sorted(set(normalized))),
            updates=updates,
        )
    family = payload.get("family")
    if family not in FAMILY_MAKERS:
        raise JobError(
            f"unknown family {family!r}; choose from {sorted(FAMILY_MAKERS)} "
            f"or supply 'edges'"
        )
    n = _require_int(payload, "n", 0, 2, MAX_N)
    seed = _require_int(payload, "seed", 0, 0, 2**31)
    root = _require_int(payload, "root", 0, 0, MAX_N)
    return JobSpec(
        kind="generator", family=family, n=n, seed=seed, root=root,
        updates=updates,
    )


def _build_graph(spec: JobSpec):
    import networkx as nx

    from ..cli import FAMILY_MAKERS

    if spec.kind == "generator":
        return FAMILY_MAKERS[spec.family](spec.n, spec.seed)
    graph = nx.Graph()
    graph.add_edges_from(spec.edges)
    return graph


def _serialize_worker_trace(tracer, trace_ctx, entry_ts: float, t_entry: float) -> Dict[str, Any]:
    """Flatten the worker's span tree into JSON primitives.

    Offsets are seconds relative to the worker's entry (``t_entry`` on
    the worker's perf-counter clock); ``entry_ts`` is the matching epoch
    timestamp so the engine can place the subtree on the request's own
    clock (the gap between dispatch and entry is the queue wait).
    """
    spans = []
    for s in tracer.spans:
        t0 = max(0.0, s._t0 - t_entry)
        spans.append({
            "id": s.id,
            "parent": s.parent_id or 0,
            "name": s.name,
            "status": "ok",
            "t0": round(t0, 6),
            "t1": round(t0 + s.wall_s, 6),
        })
    return {"trace": trace_ctx.trace_id, "entry_ts": entry_ts, "spans": spans}


def run_job(
    canonical: Dict[str, Any],
    deadline_ts: Optional[float] = None,
    trace_ctx: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute one job end to end (the worker-pool entry point).

    Returns a terminal payload dict, never raises for a job-shaped
    failure:

    * ``{"status": "ok", ...}`` — separator + DFS tree + certificate,
      all oracles passed *in this worker*;
    * ``{"status": "invalid", ...}`` — the instance is unusable
      (disconnected, non-planar, unknown root): the client's fault;
    * ``{"status": "expired"}`` — the request's deadline passed before
      the worker picked it up, so it declined to burn CPU on an answer
      nobody is waiting for;
    * ``{"status": "oracle-violation", ...}`` — the pipeline produced an
      object that failed its own definition check.  Deterministic
      algorithms should make this unreachable; surfacing it (instead of
      trusting the result) is the point of running oracles in-worker.

    When ``trace_ctx`` (a picklable :class:`repro.obs.events.TraceContext`)
    rides along, the worker attaches a :class:`repro.obs.Tracer` under
    the request span and returns its span subtree in a reserved
    ``"_trace"`` key — which the engine strips before caching or
    responding, so payloads are bit-identical with tracing on or off.
    """
    from ..core.certify import certify_cycle
    from ..core.config import PlanarConfiguration
    from ..core.dfs import dfs_tree
    from ..core.separator import cycle_separator
    from ..core.verify import (
        VerificationError,
        check_dfs_tree,
        check_separator,
        separator_report,
    )

    if deadline_ts is not None and time.time() >= deadline_ts:
        return {"status": "expired"}
    from ..obs.tracing import NULL_SPAN, Tracer

    tracer = None
    if trace_ctx is not None:
        tracer = Tracer()
        tracer.bind_context(trace_ctx)
        entry_ts = time.time()
        t_entry = time.perf_counter()
        span = tracer.span
    else:
        span = lambda name: NULL_SPAN  # noqa: E731 - tracing off allocates nothing

    def _finish(payload: Dict[str, Any]) -> Dict[str, Any]:
        if tracer is not None:
            payload["_trace"] = _serialize_worker_trace(
                tracer, trace_ctx, entry_ts, t_entry
            )
        return payload

    updates = tuple(tuple(u) for u in canonical.get("updates", ()))
    spec = (
        JobSpec(
            kind="edges",
            root=canonical.get("root", 0),
            edges=tuple(tuple(e) for e in canonical.get("edges", ())),
            updates=updates,
        )
        if canonical.get("kind") == "edges"
        else JobSpec(
            kind="generator",
            family=canonical.get("family"),
            n=canonical.get("n", 0),
            seed=canonical.get("seed", 0),
            root=canonical.get("root", 0),
            updates=updates,
        )
    )
    if spec.updates:
        return _run_update_job(spec, span, _finish)
    try:
        with span("build"):
            graph = _build_graph(spec)
            nodes = sorted(graph.nodes)
            root = nodes[spec.root % len(nodes)]
            cfg = PlanarConfiguration.build(graph, root=root)
    except (ValueError, KeyError, IndexError, ZeroDivisionError) as exc:
        return _finish({"status": "invalid", "error": f"{type(exc).__name__}: {exc}"})
    try:
        with span("separator"):
            sep = cycle_separator(cfg)
            report = separator_report(graph, sep.path)
            check_separator(graph, sep.path)
        with span("certify"):
            certificate = certify_cycle(cfg, sep.path)
        with span("dfs"):
            dfs = dfs_tree(graph, root)
            check_dfs_tree(graph, dfs.parent, root)
    except VerificationError as exc:
        return _finish({"status": "oracle-violation", "error": str(exc)})
    return _finish({
        "status": "ok",
        "job": spec.canonical(),
        "key": spec.key(),
        "n": len(graph),
        "m": graph.number_of_edges(),
        "root": root,
        "separator": {
            "path": list(sep.path),
            "size": report.separator_size,
            "phase": sep.phase,
            "rule": sep.rule,
            "certificate": certificate,
            "max_fraction": round(report.max_fraction, 6),
            "balanced": report.balanced,
        },
        "dfs": {
            "parent": sorted(
                ([v, p] for v, p in dfs.parent.items()), key=lambda e: repr(e)
            ),
            "height": dfs.to_tree().height(),
            "phases": dfs.phases,
            "separator_phases": dfs.separator_phases,
        },
        "oracles": {"separator": True, "dfs": True},
    })


def _run_update_job(spec: JobSpec, span, _finish) -> Dict[str, Any]:
    """Execute an update-mode job through the incremental repair engine.

    The updates are applied as one batch to a
    :class:`~repro.dynamic.repair.DynamicPipeline`, which oracle-checks
    the repaired state before handing it back — an
    :class:`~repro.dynamic.repair.UnsoundRepairError` becomes the same
    ``"oracle-violation"`` terminal the static path uses, and a rejected
    mutation (planarity break, bridge delete, duplicate edge) is the
    client's fault: ``"invalid"``.
    """
    from ..core.verify import VerificationError, separator_report
    from ..dynamic.mutations import MutationError
    from ..dynamic.repair import DynamicPipeline, UnsoundRepairError
    from ..trees.rooted import RootedTree

    try:
        with span("build"):
            graph = _build_graph(spec)
            nodes = sorted(graph.nodes)
            root = nodes[spec.root % len(nodes)]
            pipeline = DynamicPipeline(graph, root=root, charge_rounds=False)
    except (ValueError, KeyError, IndexError, ZeroDivisionError) as exc:
        return _finish({"status": "invalid", "error": f"{type(exc).__name__}: {exc}"})
    try:
        with span("updates"):
            pipeline.apply(list(spec.updates))
    except MutationError as exc:
        return _finish({"status": "invalid", "error": f"MutationError: {exc}"})
    except UnsoundRepairError as exc:
        return _finish({"status": "oracle-violation", "error": str(exc)})
    except VerificationError as exc:  # pragma: no cover - wrapped above
        return _finish({"status": "oracle-violation", "error": str(exc)})
    post = pipeline.graph
    report = separator_report(post, list(pipeline.separator_path))
    stats = pipeline.stats
    return _finish({
        "status": "ok",
        "job": spec.canonical(),
        "key": spec.key(),
        "n": len(post),
        "m": post.number_of_edges(),
        "root": root,
        "separator": {
            "path": list(pipeline.separator_path),
            "size": report.separator_size,
            "phase": pipeline.separator_phase,
            "rule": "dynamic-repair",
            "certificate": pipeline.certificate,
            "max_fraction": round(report.max_fraction, 6),
            "balanced": report.balanced,
        },
        "dfs": {
            "parent": sorted(
                ([v, p] for v, p in pipeline.parent.items()),
                key=lambda e: repr(e),
            ),
            "height": RootedTree(pipeline.parent, root).height(),
            "phases": stats["batches"],
            "separator_phases": stats["separator_recomputes"],
        },
        "dynamic": {
            "updates_applied": stats["updates_applied"],
            "region_repairs": stats["region_repairs"],
            "fallbacks": stats["fallbacks"],
            "separator_recomputes": stats["separator_recomputes"],
            "full_recomputes": stats["full_recomputes"],
            "state_fingerprint": pipeline.state_fingerprint(),
        },
        "oracles": {"separator": True, "dfs": True},
    })


def verify_result(result: Dict[str, Any]) -> None:
    """Independently re-run the oracles against an ``"ok"`` payload.

    The chaos harness's outside check: rebuild the instance from the
    response's own job identity — replaying the job's update sequence
    for update-mode jobs, so the oracles judge the answer against the
    *post-update* graph it claims to describe — and hold the *returned*
    separator path and parent map to ``check_separator`` /
    ``check_dfs_tree``.  Raises
    :class:`repro.core.verify.VerificationError` on any defect.
    """
    from ..core.verify import check_dfs_tree, check_separator

    spec = parse_job(result["job"])
    graph = _build_graph(spec)
    if spec.updates:
        from ..dynamic.mutations import apply_updates_graph

        graph = apply_updates_graph(graph, list(spec.updates))
    check_separator(graph, result["separator"]["path"])
    parent = {v: p for v, p in result["dfs"]["parent"]}
    check_dfs_tree(graph, parent, result["root"])
