"""``repro.serve`` — the self-defending separator/DFS service.

The robustness layer over the paper's pipeline: accept graph jobs over
HTTP, execute them in a supervised worker pool, and keep every response
terminal and oracle-checked no matter what the workers, the load, or the
chaos harness do.  The degradation ladder (accept → queue → shed →
break) lives in :mod:`.engine`; :mod:`.jobs` defines the content-addressed
job model, :mod:`.pool` the restartable pool and circuit breaker,
:mod:`.http` the stdlib asyncio front end, and :mod:`.loadgen` the seeded
workload driver that emits ``BENCH_SERVE.json``.  See ``docs/SERVE.md``.
"""

from .engine import STATUS_CODES, ServeConfig, ServeEngine, ServeResponse
from .http import ServeServer, http_request, run_server
from .jobs import JobError, JobSpec, parse_job, run_job, verify_result
from .loadgen import (
    EngineTarget,
    HttpTarget,
    LoadgenConfig,
    build_catalog,
    parse_prometheus,
    run_loadgen,
    serve_metrics,
    write_bench,
)
from .pool import CircuitBreaker, SupervisedPool

__all__ = [
    "STATUS_CODES",
    "CircuitBreaker",
    "EngineTarget",
    "HttpTarget",
    "JobError",
    "JobSpec",
    "LoadgenConfig",
    "ServeConfig",
    "ServeEngine",
    "ServeResponse",
    "ServeServer",
    "SupervisedPool",
    "build_catalog",
    "http_request",
    "parse_job",
    "parse_prometheus",
    "run_job",
    "run_loadgen",
    "run_server",
    "serve_metrics",
    "verify_result",
    "write_bench",
]
