"""The ``repro serve`` request engine: the degradation ladder in code.

:class:`ServeEngine` owns every robustness decision between "bytes
arrived" and "terminal response", in the order a request meets them:

1. **drain** — a stopping service admits nothing (503 ``draining``);
2. **admission** — a bounded in-flight window; a full window sheds
   *synchronously* (429 ``shed`` + Retry-After) before the request costs
   anything, so overload degrades into fast refusals instead of a queue
   collapse;
3. **cache** — the content-addressed job key (:meth:`JobSpec.key`) hits
   :class:`~repro.analysis.cache.InstanceCache` and skips the pool
   entirely — repeats are free, and the same idempotency makes
   worker-death retries safe;
4. **breaker** — repeated worker deaths trip the
   :class:`~repro.serve.pool.CircuitBreaker`; an open breaker fast-fails
   (503 ``breaker-open``) instead of feeding a dying pool;
5. **deadline** — the absolute deadline travels into the worker (which
   declines expired jobs) and bounds the parent's wait; expiry is a 503
   ``deadline``, and a worker that keeps computing past it is a *wedge*:
   a watchdog SIGKILLs the generation after a grace period so the slot
   comes back;
6. **supervision** — a worker death poisons its generation's futures
   with ``BrokenProcessPool``; the first observer restarts the pool
   (generation-guarded, exponential backoff) and innocent jobs retry up
   to ``job_retries`` times before giving up with 503 ``worker-died``.

Every path lands in exactly one terminal status — ``ok`` (200),
``invalid`` (400), ``shed`` (429), or a 503 flavour — which is the
invariant the chaos harness (:mod:`repro.chaos.serve_chaos`) fingerprints.

The engine is transport-agnostic: :mod:`repro.serve.http` maps
:class:`ServeResponse` onto HTTP, the chaos harness calls
:meth:`ServeEngine.submit` directly.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..analysis.cache import InstanceCache
from ..obs.events import EventLog, RequestTrace, TraceContext, write_events
from ..obs.metrics import MetricsRegistry
from .jobs import JobError, parse_job, run_job
from .pool import BROKEN_POOL, CircuitBreaker, SupervisedPool

__all__ = ["ServeConfig", "ServeEngine", "ServeResponse", "STATUS_CODES"]

#: Terminal status -> HTTP code; the complete response taxonomy.
STATUS_CODES = {
    "ok": 200,
    "invalid": 400,
    "shed": 429,
    "draining": 503,
    "breaker-open": 503,
    "deadline": 503,
    "worker-died": 503,
    "oracle-violation": 503,
}

#: Latency buckets for ``serve_request_seconds`` (sub-ms cache hits
#: through multi-second big-instance pipelines).
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


@dataclass
class ServeConfig:
    """Tunables for one engine; the CLI maps flags onto these fields."""

    workers: int = 2
    #: Admission window: max requests past admission at once; the queue
    #: the window implies lives in the pool's submit backlog.
    max_inflight: int = 8
    #: Default per-request deadline (seconds); clients may lower it.
    deadline_s: float = 30.0
    #: Retry-After hint attached to 429s.
    retry_after_s: float = 1.0
    #: Bounded retries for jobs orphaned by a worker death.
    job_retries: int = 1
    #: Worker deaths (without an intervening success) that trip the breaker.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    #: Count-based cooldown override (deterministic chaos mode).
    breaker_cooldown_rejects: Optional[int] = None
    #: Restart backoff (0 = no sleeping, the deterministic test mode).
    restart_backoff_s: float = 0.05
    restart_backoff_cap_s: float = 2.0
    #: Grace before a wedged worker (computing past its deadline) is shot.
    wedge_grace_s: float = 2.0
    #: Result cache location; ``None`` disables caching entirely.
    cache_dir: Optional[str] = "benchmarks/.cache"
    cache_enabled: bool = True
    #: Request-scoped tracing (opt-in; a traced run is bit-identical to
    #: an untraced one — spans are observational only).
    trace_requests: bool = False
    #: Finished request records retained for the serve-events flush.
    trace_capacity: int = 100_000
    #: Structured-event ring buffer size (always on; feeds /statusz).
    events_capacity: int = 256


@dataclass
class ServeResponse:
    """One terminal response: HTTP code, JSON body, optional headers."""

    code: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def status(self) -> str:
        return self.body.get("status", "")


class ServeEngine:
    """The service core — see the module docstring for the ladder."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pool = SupervisedPool(
            self.config.workers,
            backoff_base=self.config.restart_backoff_s,
            backoff_cap=self.config.restart_backoff_cap_s,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            cooldown_rejects=self.config.breaker_cooldown_rejects,
        )
        self.cache = InstanceCache(
            self.config.cache_dir or ".",
            enabled=self.config.cache_enabled and self.config.cache_dir is not None,
        )
        self.inflight = 0
        self.draining = False
        self._drained = asyncio.Event()
        self._drained.set()
        self._restart_lock = asyncio.Lock()
        #: Structured service events (pool restarts, breaker flips,
        #: chaos kills, sheds) — always on, bounded, feeds /statusz and
        #: the serve-events JSONL.
        self.events = EventLog(self.config.events_capacity)
        self.pool.on_event = self.events.emit
        #: Finished request-trace records (only fed when
        #: ``config.trace_requests`` is set).
        self.request_traces: deque = deque(maxlen=self.config.trace_capacity)
        self._trace_seq = 0
        m = self.metrics
        self._m_requests = m.counter(
            "serve_requests_total", "Terminal responses by status", labels=("status",)
        )
        self._m_shed = m.counter("serve_shed_total", "Requests refused by admission control")
        self._m_cache_hits = m.counter("serve_cache_hits_total", "Jobs answered from the result cache")
        self._m_retries = m.counter("serve_retries_total", "Jobs re-dispatched after a worker death")
        self._m_restarts = m.counter("serve_worker_restarts_total", "Worker-pool generation restarts")
        self._m_breaker = m.counter("serve_breaker_open_total", "Circuit-breaker trips to open")
        self._m_wedge = m.counter("serve_wedge_kills_total", "Wedged workers killed past deadline")
        self._m_inflight = m.gauge("serve_inflight", "Requests currently past admission")
        self._m_latency = m.histogram(
            "serve_request_seconds", "Terminal-response latency", buckets=_LATENCY_BUCKETS
        )

    # ------------------------------------------------------------------
    def _begin_trace(self, trace_id: Optional[str]) -> Optional[RequestTrace]:
        if not self.config.trace_requests:
            return None
        if trace_id is None:
            self._trace_seq += 1
            trace_id = f"req-{self._trace_seq:06d}"
        return RequestTrace(trace_id)

    async def submit(
        self,
        payload: Any,
        *,
        deadline_s: Optional[float] = None,
        on_dispatch: Optional[Callable[["ServeEngine", int], None]] = None,
        trace_id: Optional[str] = None,
    ) -> ServeResponse:
        """Run one request through the ladder to a terminal response.

        The drain and admission checks (and the shed itself) run in the
        synchronous prefix — before the first ``await`` — so a burst of
        N tasks created in order sheds deterministically: the first
        ``max_inflight`` are admitted, the rest refused, regardless of
        how the event loop later interleaves them.

        ``on_dispatch(engine, attempt)`` fires right after each pool
        dispatch — the chaos harness's seam for killing the worker that
        just received the job.

        ``trace_id`` adopts a client-minted id for the request trace
        (with ``config.trace_requests`` on); engine-minted ids are
        sequential (``req-000001``), so a deterministic admission order
        yields deterministic ids.
        """
        started = time.monotonic()
        rt = self._begin_trace(trace_id)
        if self.draining:
            if rt is not None:
                rt.add("admit", 0.0, rt.now(), status="draining")
            return self._terminal("draining", {}, started, rt=rt)
        if self.inflight >= self.config.max_inflight:
            self._m_shed.inc()
            self.events.emit("shed", trace=rt.trace_id if rt else None,
                             inflight=self.inflight)
            if rt is not None:
                now = rt.now()
                rt.add("admit", 0.0, now, status="ok")
                rt.add("shed", now, rt.now(), status="shed")
            return self._terminal(
                "shed",
                {"retry_after": self.config.retry_after_s},
                started,
                headers={"Retry-After": f"{self.config.retry_after_s:g}"},
                rt=rt,
            )
        self.inflight += 1
        self._drained.clear()
        self._m_inflight.set_max(self.inflight)
        try:
            return await self._execute(payload, deadline_s, on_dispatch, started, rt)
        finally:
            self.inflight -= 1
            if self.inflight == 0:
                self._drained.set()

    async def _execute(
        self,
        payload: Any,
        deadline_s: Optional[float],
        on_dispatch: Optional[Callable[["ServeEngine", int], None]],
        started: float,
        rt: Optional[RequestTrace] = None,
    ) -> ServeResponse:
        # The "admit" phase covers parse + cache lookup + breaker check.
        admit = rt.begin("admit") if rt is not None else None
        try:
            spec = parse_job(payload)
        except JobError as exc:
            if rt is not None:
                rt.end(admit, "invalid")
            return self._terminal("invalid", {"error": str(exc)}, started, rt=rt)
        key = spec.key()
        hit, cached_result = self.cache.get("serve-job", [key])
        if hit:
            self._m_cache_hits.inc()
            if rt is not None:
                rt.end(admit, "ok")
            return self._terminal(
                "ok", dict(cached_result, cached=True), started, rt=rt
            )
        if not self.breaker.allow():
            if rt is not None:
                rt.end(admit, "ok")
                rt.end(rt.begin("breaker-fastfail"), "breaker-open")
            return self._terminal("breaker-open", {"key": key}, started, rt=rt)
        if rt is not None:
            rt.end(admit, "ok")

        budget = self.config.deadline_s if deadline_s is None else deadline_s
        deadline_ts = time.time() + budget
        canonical = spec.canonical()
        attempts = 1 + max(0, self.config.job_retries)
        for attempt in range(attempts):
            remaining = deadline_ts - time.time()
            if remaining <= 0:
                return self._terminal("deadline", {"key": key}, started, rt=rt)
            generation = self.pool.generation
            dispatch = rt.begin("dispatch") if rt is not None else None
            dispatch_epoch = time.time()
            try:
                if rt is not None:
                    ctx = TraceContext(rt.trace_id, span_id=dispatch,
                                       deadline_ts=deadline_ts)
                    fut = self.pool.submit(run_job, canonical, deadline_ts, ctx)
                else:
                    fut = self.pool.submit(run_job, canonical, deadline_ts)
            except BROKEN_POOL:
                if rt is not None:
                    rt.end(dispatch, "killed")
                self.events.emit("worker-died", trace=rt.trace_id if rt else None,
                                 attempt=attempt)
                await self._handle_pool_death(generation)
                if attempt + 1 < attempts:
                    self._m_retries.inc()
                    if rt is not None:
                        rt.end(rt.begin("retry"), "ok")
                    continue
                return self._terminal(
                    "worker-died", {"key": key, "attempts": attempt + 1},
                    started, rt=rt,
                )
            if on_dispatch is not None:
                on_dispatch(self, attempt)
            if rt is not None:
                rt.end(dispatch, "ok")
                await_t0 = rt.now()
            try:
                result = await asyncio.wait_for(asyncio.wrap_future(fut), remaining)
            except asyncio.TimeoutError:
                # wait_for cancelled the wrapper; if the concurrent future
                # is already running the worker is wedged — give it grace,
                # then shoot the generation so the slot comes back.
                if rt is not None:
                    rt.add("run", await_t0, rt.now(), status="deadline")
                if not fut.cancel() and not fut.done():
                    asyncio.get_running_loop().create_task(
                        self._wedge_watchdog(fut, generation)
                    )
                return self._terminal("deadline", {"key": key}, started, rt=rt)
            except BROKEN_POOL:
                # The worker died mid-span: its subtree never came back,
                # so the whole awaited interval closes terminally.
                if rt is not None:
                    rt.add("run", await_t0, rt.now(), status="killed")
                self.events.emit("worker-died", trace=rt.trace_id if rt else None,
                                 attempt=attempt)
                await self._handle_pool_death(generation)
                if attempt + 1 < attempts:
                    self._m_retries.inc()
                    if rt is not None:
                        rt.end(rt.begin("retry"), "ok")
                    continue
                return self._terminal(
                    "worker-died", {"key": key, "attempts": attempt + 1},
                    started, rt=rt,
                )

            self.pool.note_success()
            breaker_was = self.breaker.state
            self.breaker.record_success()
            if breaker_was != "closed" and self.breaker.state == "closed":
                self.events.emit("breaker-close")
            status = result.get("status", "oracle-violation")
            worker_trace = result.pop("_trace", None) if isinstance(result, dict) else None
            verify = None
            if rt is not None:
                done = rt.now()
                if worker_trace is not None:
                    # Place the worker subtree on the request clock: the
                    # dispatch->entry epoch gap is the queue wait.
                    queue_s = max(0.0, worker_trace.get("entry_ts", dispatch_epoch)
                                  - dispatch_epoch)
                    pickup = min(await_t0 + queue_s, done)
                    rt.add("queue", await_t0, pickup)
                    run_span = rt.add("run", pickup, done)
                    rt.graft(worker_trace.get("spans", ()), run_span, pickup,
                             clamp=done)
                else:
                    rt.add("run", await_t0, done)
                verify = rt.begin("verify")
            if status == "ok":
                self.cache.put("serve-job", [key], result)
                if rt is not None:
                    rt.end(verify, "ok")
                return self._terminal(
                    "ok", dict(result, cached=False, attempts=attempt + 1),
                    started, rt=rt,
                )
            if rt is not None:
                rt.end(verify, status)
            if status == "invalid":
                return self._terminal(
                    "invalid", {"error": result.get("error")}, started, rt=rt
                )
            if status == "expired":
                return self._terminal("deadline", {"key": key}, started, rt=rt)
            return self._terminal(
                "oracle-violation", {"key": key, "error": result.get("error")},
                started, rt=rt,
            )
        raise AssertionError("unreachable: retry loop always returns")

    async def _handle_pool_death(self, generation: int) -> None:
        """One restart (and one breaker failure) per dead generation, no
        matter how many in-flight requests observed the corpse."""
        async with self._restart_lock:
            if generation != self.pool.generation:
                return  # another request already supervised this death
            opens_before = self.breaker.opens
            self.breaker.record_failure()
            if self.breaker.opens > opens_before:
                self._m_breaker.inc()
                self.events.emit("breaker-open", opens=self.breaker.opens)
            delay = self.pool.backoff_delay()
            if delay > 0:
                await asyncio.sleep(delay)
            if self.pool.restart(generation):
                self._m_restarts.inc()

    async def _wedge_watchdog(self, fut, generation: int) -> None:
        await asyncio.sleep(self.config.wedge_grace_s)
        if fut.done() or self.pool.generation != generation:
            return
        self._m_wedge.inc()
        self.events.emit("wedge-kill", generation=generation)
        self.pool.kill_all_workers()  # poisons the generation; the next
        # observer's BrokenProcessPool triggers the normal restart path

    def _terminal(
        self,
        status: str,
        body: Dict[str, Any],
        started: float,
        headers: Optional[Dict[str, str]] = None,
        rt: Optional[RequestTrace] = None,
    ) -> ServeResponse:
        self._m_requests.inc(status=status)
        self._m_latency.observe(time.monotonic() - started)
        out = {"status": status}
        out.update(body)
        headers = dict(headers or {})
        if rt is not None:
            respond = rt.begin("respond")
            rt.end(respond, "ok")
            # Orphan guarantee: any span still open (a worker killed
            # mid-span, an abandoned phase) closes terminally here, so
            # the finished record always validates.
            rt.force_close_open("killed")
            self.request_traces.append(
                rt.finalize(status, STATUS_CODES[status],
                            attempts=int(body.get("attempts", 1)),
                            cached=bool(body.get("cached", False)))
            )
            headers["X-Trace-Id"] = rt.trace_id
        return ServeResponse(STATUS_CODES[status], out, headers)

    # ------------------------------------------------------------------
    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful stop: refuse new work, wait for in-flight requests,
        shut the pool down.  Returns True when everything finished inside
        ``timeout_s`` (stragglers past it resolve as 503s on their own —
        the pool shutdown breaks their futures)."""
        if not self.draining:
            self.events.emit("drain", inflight=self.inflight)
        self.draining = True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout_s)
            clean = True
        except asyncio.TimeoutError:
            clean = False
        self.pool.shutdown()
        return clean

    def close(self) -> None:
        """Synchronous teardown for tests and CLI cleanup paths."""
        self.draining = True
        self.pool.shutdown()

    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        """Liveness: the process is up and the pool is not closed."""
        return not self.pool._closed

    def ready(self) -> bool:
        """Readiness: admitting traffic with a closed (or probing) breaker."""
        return not self.draining and self.breaker.state != "open"

    def latency_quantiles(self) -> Dict[str, float]:
        """Server-side latency quantiles straight from the histogram —
        the :meth:`Histogram.quantile` satellite; consumers no longer
        recompute them from bucket counts."""
        h = self._m_latency
        return {
            "p50": round(h.quantile(0.50), 6),
            "p95": round(h.quantile(0.95), 6),
            "p99": round(h.quantile(0.99), 6),
        }

    def stats(self) -> Dict[str, Any]:
        """Snapshot for ``BENCH_SERVE.json`` and the chaos harness."""
        by_status = {
            ",".join(k): v for k, v in sorted(self._m_requests._values.items())
        }
        return {
            "requests": by_status,
            "shed": self._m_shed.total,
            "cache_hits": self._m_cache_hits.total,
            "retries": self._m_retries.total,
            "worker_restarts": self._m_restarts.total,
            "breaker_opens": self._m_breaker.total,
            "wedge_kills": self._m_wedge.total,
            "pool_generation": self.pool.generation,
            "breaker_state": self.breaker.state,
            "latency_s": self.latency_quantiles(),
            "cache": self.cache.stats(),
        }

    def statusz(self, last_events: int = 32) -> Dict[str, Any]:
        """The ``/statusz`` snapshot: breaker + pool + queue state and
        the tail of the structured-event ring buffer."""
        return {
            "status": "ok",
            "draining": self.draining,
            "inflight": self.inflight,
            "queue_depth": max(0, self.inflight - self.config.workers),
            "breaker": {
                "state": self.breaker.state,
                "failures": self.breaker.failures,
                "opens": self.breaker.opens,
            },
            "pool": {
                "generation": self.pool.generation,
                "restarts": self.pool.restarts,
                "workers": self.config.workers,
            },
            "trace": {
                "enabled": self.config.trace_requests,
                "requests": len(self.request_traces),
            },
            "latency_s": self.latency_quantiles(),
            "events": self.events.snapshot(last_events),
        }

    def flush_events(self, path) -> int:
        """Write the serve-events JSONL (request records interleaved with
        structured events, per-phase histograms, attribution summary).
        Returns the number of lines written."""
        return write_events(path, list(self.request_traces),
                            self.events.snapshot())
