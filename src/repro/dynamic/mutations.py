"""Planarity-preserving edge mutations and seeded churn schedules.

The dynamic-graph layer mutates a *connected planar* instance one edge at
a time while keeping both standing hypotheses of Theorems 1 and 2 intact:

* **insert** — the edge must keep the graph planar.  The embedding is
  repaired locally when the two endpoints share a face of the current
  rotation system (the new edge becomes a chord of that face); otherwise
  the candidate graph is re-validated via :mod:`repro.planar.checks` and,
  if planar, re-embedded from scratch.  A planarity-breaking insert is
  rejected with :class:`MutationError` *before* any state changes.
* **delete** — always planar, but a bridge delete would disconnect the
  graph and is rejected (the pipeline's oracles are only defined on
  connected graphs).

Node set churn is out of scope: ``n`` is constant across a mutation
sequence, so the :math:`2n/3` balance bound the separator oracle enforces
never moves under churn.

:func:`flap_updates` derives a deterministic update schedule from the
fault layer's ``edge_flap`` coins (:class:`repro.congest.faults.FaultPlan`
keyed on ``(seed, "flap", u, v, round)`` with the canonical sorted edge):
a flapped edge is deleted in its round and re-inserted ``down_for``
rounds later.  The same seed therefore drives message-level churn in the
CONGEST simulator and topology-level churn here.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..congest.faults import FaultPlan
from ..planar.checks import NotPlanarError, require_planar
from ..planar.rotation import EmbeddingError, RotationSystem

Node = Hashable
#: One mutation: ``("insert", u, v)`` or ``("delete", u, v)``.
Update = Tuple[str, Node, Node]

__all__ = [
    "DynamicPlanarGraph",
    "MutationError",
    "Update",
    "apply_updates_graph",
    "flap_updates",
]


class MutationError(ValueError):
    """A mutation that would violate the standing hypotheses (planarity,
    connectivity) or is structurally inapplicable (duplicate edge,
    missing edge, self-loop)."""


def _face_chord_positions(
    rotation: RotationSystem, u: Node, v: Node
) -> Optional[Tuple[Node, Node]]:
    """``(after_u, after_v)`` placing ``uv`` as a chord of a shared face.

    Walks every face of the embedding; when one walk visits both ``u``
    and ``v`` the edge can be drawn inside that face.  With clockwise
    rotations a face walk ``..., w, u, x, ...`` means the walk continues
    from half-edge ``(w, u)`` with ``(u, successor_cw(u, w))`` — so
    placing ``v`` immediately clockwise-after ``w`` in ``t_u`` (and
    symmetrically after ``v``'s predecessor in ``t_v``) splits exactly
    that face.  Returns ``None`` when no shared face exists (the current
    embedding does not admit the edge, though another embedding might).
    """
    for walk in rotation.faces():
        if u in walk and v in walk:
            k = len(walk)
            after_u = after_v = None
            for i, node in enumerate(walk):
                if node == u and after_u is None:
                    after_u = walk[i - 1] if k > 1 else None
                if node == v and after_v is None:
                    after_v = walk[i - 1] if k > 1 else None
            return (after_u, after_v)
    return None


class DynamicPlanarGraph:
    """A connected planar graph under edge churn, with its embedding.

    Keeps ``graph`` (a :class:`networkx.Graph`) and ``rotation`` (a
    :class:`~repro.planar.rotation.RotationSystem`) in lockstep; every
    accepted mutation leaves the pair a valid connected planar embedded
    instance.  The repair engine (:class:`repro.dynamic.repair.
    DynamicPipeline`) owns one of these and patches its separator/DFS
    state after each accepted batch.
    """

    def __init__(self, graph: nx.Graph, rotation: Optional[RotationSystem] = None):
        if len(graph) < 2:
            raise MutationError("dynamic instances need at least two nodes")
        if not nx.is_connected(graph):
            raise MutationError("dynamic instances must start connected")
        self.graph = graph.copy()
        self.rotation = (
            rotation.copy() if rotation is not None
            else RotationSystem.from_graph(self.graph)
        )
        #: Count of embeddings rebuilt from scratch (no shared face).
        self.reembeds = 0

    # ------------------------------------------------------------------
    def insert_edge(self, u: Node, v: Node) -> None:
        """Insert ``uv``; raises :class:`MutationError` when the edge is a
        duplicate/self-loop, touches an unknown node, or breaks planarity."""
        if u == v:
            raise MutationError(f"self-loop {u!r} rejected")
        if u not in self.graph or v not in self.graph:
            raise MutationError(f"insert {u!r}-{v!r}: unknown endpoint")
        if self.graph.has_edge(u, v):
            raise MutationError(f"edge {u!r}-{v!r} already present")
        positions = _face_chord_positions(self.rotation, u, v)
        if positions is not None:
            self.rotation.insert_edge(u, v, after_u=positions[0], after_v=positions[1])
            self.graph.add_edge(u, v)
            return
        # No face of the *current* embedding admits the edge; the graph
        # plus the edge may still be planar under a different embedding.
        candidate = self.graph.copy()
        candidate.add_edge(u, v)
        try:
            require_planar(candidate)
        except NotPlanarError as exc:
            raise MutationError(
                f"insert {u!r}-{v!r} rejected: {exc}"
            ) from exc
        self.rotation = RotationSystem.from_graph(candidate)
        self.graph = candidate
        self.reembeds += 1

    def delete_edge(self, u: Node, v: Node) -> None:
        """Delete ``uv``; raises :class:`MutationError` when the edge is
        absent or is a bridge (the graph must stay connected)."""
        if not self.graph.has_edge(u, v):
            raise MutationError(f"edge {u!r}-{v!r} is not present")
        self.graph.remove_edge(u, v)
        if not (
            nx.has_path(self.graph, u, v)
        ):
            self.graph.add_edge(u, v)
            raise MutationError(
                f"delete {u!r}-{v!r} rejected: edge is a bridge "
                "(graph must stay connected)"
            )
        self.rotation.delete_edge(u, v)

    def apply(self, update: Update, *, strict: bool = True) -> bool:
        """Apply one update; returns whether it was applied.

        ``strict=True`` raises :class:`MutationError` on any inapplicable
        or rejected update.  ``strict=False`` skips it and returns
        ``False`` — the mode the shrinker uses so that *subsets* of a
        recorded update sequence stay meaningful (an insert whose partner
        delete was removed becomes a no-op instead of an error).
        """
        op, u, v = update
        try:
            if op == "insert":
                self.insert_edge(u, v)
            elif op == "delete":
                self.delete_edge(u, v)
            else:
                raise MutationError(f"unknown update op {op!r}")
        except MutationError:
            if strict:
                raise
            return False
        return True

    def validate(self) -> None:
        """Cross-check graph <-> rotation consistency and planarity."""
        self.rotation.validate()
        rot_edges = {frozenset(e) for e in self.rotation.edges()}
        graph_edges = {frozenset(e) for e in self.graph.edges()}
        if rot_edges != graph_edges:
            raise EmbeddingError(
                "rotation system and graph disagree: "
                f"{len(rot_edges ^ graph_edges)} mismatched edge(s)"
            )


def apply_updates_graph(
    graph: nx.Graph, updates: Sequence[Update], *, strict: bool = True
) -> nx.Graph:
    """The post-update graph, without embedding maintenance.

    The cheap replay used by :func:`repro.serve.jobs.verify_result` to
    rebuild the graph an update-mode job actually answered about.  Applies
    the same accept/reject rules as :class:`DynamicPlanarGraph`.
    """
    dyn = DynamicPlanarGraph(graph)
    for update in updates:
        dyn.apply(update, strict=strict)
    return dyn.graph


def flap_updates(
    graph: nx.Graph,
    *,
    seed: int,
    rate: float,
    rounds: int,
    down_for: int = 1,
    plan: Optional[FaultPlan] = None,
) -> List[List[Update]]:
    """Seeded churn batches derived from the ``edge_flap`` fault coins.

    For each round ``1..rounds`` every edge of the *initial* graph that is
    currently up is tested with :meth:`FaultPlan.flaps`; a flapped edge is
    deleted in that round's batch and re-inserted in the batch of round
    ``r + down_for``.  A flap whose delete would disconnect the working
    graph (a bridge at that moment) is skipped — the schedule tracks the
    evolving edge set, so every emitted update is strictly applicable.
    Returns one (possibly empty) update list per round, plus a final batch
    re-inserting anything still down — the sequence is net-neutral on the
    edge set, but every delete and re-insert exercises the repair engine
    against the *repaired* state, not the original one.

    Determinism: the schedule is a pure function of ``(graph, seed, rate,
    rounds, down_for)``; passing an explicit ``plan`` (e.g. a shrunk
    explicit-schedule plan) overrides the rate-based coins.
    """
    if plan is None:
        plan = FaultPlan(seed=seed, edge_flap_rate=rate)
    edges = sorted((tuple(sorted(e, key=repr)) for e in graph.edges()), key=repr)
    working = graph.copy()
    down_until: Dict[Tuple[Node, Node], int] = {}
    batches: List[List[Update]] = []
    for rnd in range(1, rounds + 1):
        batch: List[Update] = []
        for edge in edges:
            if down_until.get(edge, 0) == rnd:
                batch.append(("insert", edge[0], edge[1]))
                working.add_edge(*edge)
                del down_until[edge]
        for edge in edges:
            if edge in down_until:
                continue
            if plan.flaps(edge[0], edge[1], rnd):
                working.remove_edge(*edge)
                if not nx.has_path(working, edge[0], edge[1]):
                    working.add_edge(*edge)  # bridge: skip this flap
                    continue
                batch.append(("delete", edge[0], edge[1]))
                down_until[edge] = rnd + max(1, down_for)
        batches.append(batch)
    tail: List[Update] = [
        ("insert", u, v)
        for (u, v) in sorted(down_until, key=repr)
    ]
    if tail:
        batches.append(tail)
    return batches
