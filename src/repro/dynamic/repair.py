"""Incremental separator/DFS repair under churn, with certified fallback.

:class:`DynamicPipeline` owns one mutating instance
(:class:`~repro.dynamic.mutations.DynamicPlanarGraph`) together with the
pipeline state the serve/chaos layers care about — a balanced cycle
separator, its certificate, and a DFS tree — and patches that state
*locally* after each accepted update instead of recomputing it from
scratch:

* **DFS repair** (the classic subtree-rebuild argument): a non-tree edge
  delete and a back-edge insert leave the DFS characterization intact and
  cost nothing.  A cross-edge insert ``uv`` only invalidates the tree
  inside the subtree of ``w = lca(u, v)``; a tree-edge delete only inside
  the subtree of the *shallowest* node the orphaned subtree re-attaches
  to.  In both cases every edge leaving the affected subtree ran to a
  proper ancestor of its region root before the repair (the DFS
  property), so recomputing a DFS tree of the induced region, rooted at
  the region root, and splicing it back yields a DFS tree of the whole
  graph.
* **Separator repair**: deletes can only shrink the components of
  ``G - S``; an insert merges two components, and the merged size is
  checked against the paper's :math:`2n/3` bound.  The separator is
  recomputed when its path/closing structure is damaged (a path edge, a
  T-path tree edge, or the certificate's feasibility) or when a merge
  busts the bound.
* **Certified fallback**: the repair region is bounded by
  ``fallback_fraction * n`` (default the balance constant ``2/3``).  The
  bound is *certified* in the sense that crossing it provably makes a
  full recompute no more expensive than the local patch — at that size
  the "local" region is the graph — so the engine falls back to a clean
  full recompute, and ``stats["fallbacks"]`` records that it did.

After **every** batch the engine re-runs the definitional oracles —
``check_separator``, ``check_dfs_tree`` and ``certify_cycle`` — on the
repaired state and raises :class:`UnsoundRepairError` (a
:class:`~repro.core.verify.VerificationError`) instead of returning, so
an unsound repair can never be observed silently.  ``repair_bugs`` is the
chaos hook: a frozenset of named, deliberately-broken repair rules
(``"keep-cross-edges"``, ``"ignore-separator-merge"``) the churn campaign
injects to prove the oracles catch exactly this class of bug.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..congest.ledger import CostModel, RoundLedger
from ..core.certify import certify_cycle
from ..core.config import PlanarConfiguration
from ..core.dfs import dfs_tree
from ..core.separator import cycle_separator
from ..core.verify import VerificationError, check_dfs_tree, check_separator
from ..trees.rooted import RootedTree
from .mutations import DynamicPlanarGraph, MutationError, Update

Node = Hashable

__all__ = [
    "DynamicPipeline",
    "KNOWN_REPAIR_BUGS",
    "UnsoundRepairError",
]

#: Certificates the oracle accepts on a (re)paired state.
_SOUND_CERTIFICATES = frozenset({"real-edge", "virtual-edge", "root-slit", "trivial"})

#: The injectable unsound-repair bugs the churn campaign knows how to
#: catch and shrink (see docs/CHAOS.md, "Churn campaign").
KNOWN_REPAIR_BUGS = frozenset({"keep-cross-edges", "ignore-separator-merge"})


class UnsoundRepairError(VerificationError):
    """A repaired state failed a definitional oracle.

    Raised *instead of returning* from :meth:`DynamicPipeline.apply`:
    callers can never observe a state for which this fired.
    """


class DynamicPipeline:
    """Separator + DFS state for one mutating instance.

    Parameters
    ----------
    graph:
        Initial connected planar instance (copied).
    root:
        DFS root (defaults to the repr-least node, like the CLI).
    mode:
        ``"incremental"`` patches locally with certified fallback;
        ``"recompute"`` rebuilds everything from scratch after each batch
        — the baseline the E15 benchmark and the fingerprint-parity tests
        compare against.
    fallback_fraction:
        The certified region bound as a fraction of ``n``: a repair
        region of more than ``floor(fallback_fraction * n)`` nodes
        triggers a full recompute.
    repair_bugs:
        Named deliberately-unsound repair rules to inject (chaos only;
        must be a subset of :data:`KNOWN_REPAIR_BUGS`).
    charge_rounds:
        Whether to account distributed round costs for every repair and
        recompute in ``stats["rounds"]`` (a
        :class:`~repro.congest.ledger.RoundLedger` per operation, with
        the region's own cost model — repairs are charged at region
        scale, recomputes at graph scale).
    """

    def __init__(
        self,
        graph: nx.Graph,
        root: Optional[Node] = None,
        *,
        mode: str = "incremental",
        fallback_fraction: float = 2.0 / 3.0,
        repair_bugs: FrozenSet[str] = frozenset(),
        charge_rounds: bool = True,
    ):
        if mode not in ("incremental", "recompute"):
            raise ValueError(f"unknown mode {mode!r}")
        if not 0.0 < fallback_fraction <= 1.0:
            raise ValueError(
                f"fallback_fraction must be in (0, 1], got {fallback_fraction}"
            )
        unknown = set(repair_bugs) - KNOWN_REPAIR_BUGS
        if unknown:
            raise ValueError(f"unknown repair bug(s): {sorted(unknown)}")
        self.dyn = DynamicPlanarGraph(graph)
        self.root = root if root is not None else min(graph.nodes, key=repr)
        if self.root not in self.dyn.graph:
            raise ValueError(f"root {self.root!r} is not a graph node")
        self.mode = mode
        self.fallback_fraction = fallback_fraction
        self.repair_bugs = frozenset(repair_bugs)
        self.charge_rounds = charge_rounds
        self.applied_updates = 0
        self.stats: Dict[str, int] = {
            "batches": 0,
            "updates_applied": 0,
            "updates_skipped": 0,
            "noop_repairs": 0,
            "region_repairs": 0,
            "region_nodes": 0,
            "fallbacks": 0,
            "separator_recomputes": 0,
            "full_recomputes": 0,
            "rounds": 0,
        }
        self._comps_dirty = False
        self._recompute_all(count=False)

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        return self.dyn.graph

    @property
    def n(self) -> int:
        return len(self.dyn.graph)

    def fallback_bound(self) -> int:
        """The certified region bound: repairs strictly larger fall back."""
        return math.floor(self.fallback_fraction * self.n)

    def apply(self, updates: Sequence[Update], *, strict: bool = True) -> Dict[str, int]:
        """Apply one batch of updates and repair; oracle-checked.

        Mutations are applied and (in incremental mode) repaired one at a
        time — the repair arguments above are stated against the state
        *after* the previous update, so interleaving is what makes them
        sound.  In ``"recompute"`` mode the whole batch is applied and
        the pipeline rebuilt once.  After the batch the oracles run; on
        any violation :class:`UnsoundRepairError` propagates and the
        (broken) state is not handed back.

        ``strict=False`` skips inapplicable updates (the shrinker's
        subset-replay mode) instead of raising :class:`MutationError`.
        Returns the per-batch slice of :attr:`stats`.
        """
        before = dict(self.stats)
        mutated = False
        for update in updates:
            if not self.dyn.apply(update, strict=strict):
                self.stats["updates_skipped"] += 1
                continue
            self.applied_updates += 1
            self.stats["updates_applied"] += 1
            mutated = True
            if self.mode == "incremental":
                self._repair_one(update)
        if self.mode == "recompute" and mutated:
            self._recompute_all()
        if self.mode == "incremental" and mutated:
            self._finalize_separator()
        self.stats["batches"] += 1
        self._verify()
        return {k: self.stats[k] - before.get(k, 0) for k in self.stats}

    def apply_batches(
        self, batches: Sequence[Sequence[Update]], *, strict: bool = True
    ) -> Dict[str, int]:
        """Apply a batch sequence (e.g. from :func:`~repro.dynamic.
        mutations.flap_updates`); returns the cumulative stats."""
        for batch in batches:
            self.apply(batch, strict=strict)
        return dict(self.stats)

    def state_fingerprint(self) -> str:
        """Canonical hash of the *logical* dynamic state.

        The dynamic analogue of :func:`repro.congest.faults.
        run_fingerprint`'s logical mode: it covers what every sound
        pipeline must agree on — the post-update graph (nodes, edges,
        root), how many updates produced it, and the verified contracts
        (balanced separator, valid DFS tree, sound certificate) — and
        deliberately excludes *which* separator path or DFS tree
        represents those contracts, exactly as the logical run
        fingerprint excludes physical transport bookkeeping.  An
        incremental pipeline and a full-recompute pipeline fed the same
        update sequence therefore fingerprint identically (locked by
        ``tests/test_dynamic.py``).
        """
        digest = hashlib.sha256()
        graph = self.dyn.graph
        digest.update(
            f"n={len(graph)};root={self.root!r};"
            f"updates={self.applied_updates};".encode()
        )
        for edge in sorted((tuple(sorted(e, key=repr)) for e in graph.edges()), key=repr):
            digest.update(f"e={edge!r};".encode())
        report = check_separator(graph, list(self.separator_path))
        check_dfs_tree(graph, self.parent, self.root)
        digest.update(
            f"balanced={report.balanced};dfs=True;"
            f"cert_ok={self.certificate in _SOUND_CERTIFICATES};".encode()
        )
        return digest.hexdigest()

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (for artifacts and serve payloads)."""
        return {
            "mode": self.mode,
            "n": self.n,
            "m": self.dyn.graph.number_of_edges(),
            "root": repr(self.root),
            "updates_applied": self.applied_updates,
            "separator_size": len(self.separator_path),
            "certificate": self.certificate,
            "fallback_bound": self.fallback_bound(),
            "stats": dict(self.stats),
        }

    # ------------------------------------------------------------------
    # full recompute (the fallback target and the "recompute" mode)
    # ------------------------------------------------------------------
    def _ledger(self, graph: nx.Graph, root: Node) -> Optional[RoundLedger]:
        if not self.charge_rounds:
            return None
        ecc = nx.eccentricity(graph, v=root)
        return RoundLedger(CostModel(len(graph), max(ecc, 1)))

    def _charge(self, ledger: Optional[RoundLedger]) -> None:
        if ledger is not None:
            self.stats["rounds"] += ledger.total_rounds

    def _recompute_all(self, *, count: bool = True) -> None:
        graph = self.dyn.graph
        ledger = self._ledger(graph, self.root)
        self._recompute_separator(ledger=ledger, count=False)
        dfs = dfs_tree(graph, self.root, ledger=ledger)
        self.parent: Dict[Node, Optional[Node]] = dict(dfs.parent)
        self.tree = RootedTree(self.parent, self.root)
        self._charge(ledger)
        if count:
            self.stats["full_recomputes"] += 1

    def _recompute_separator(
        self, *, ledger: Optional[RoundLedger] = None, count: bool = True
    ) -> None:
        graph = self.dyn.graph
        own_ledger = ledger is None
        if own_ledger:
            ledger = self._ledger(graph, self.root)
        cfg = PlanarConfiguration.build(
            graph, root=self.root, rotation=self.dyn.rotation.copy()
        )
        sep = cycle_separator(cfg, ledger=ledger)
        self.separator_path: Tuple[Node, ...] = tuple(sep.path)
        self.separator_phase = sep.phase
        self.certificate = certify_cycle(cfg, sep.path)
        self._sep_tree_parent: Dict[Node, Optional[Node]] = dict(cfg.tree.parent)
        self._sep_tree_root: Node = cfg.tree.root
        self._rebuild_components()
        if own_ledger:
            self._charge(ledger)
        if count:
            self.stats["separator_recomputes"] += 1

    def _rebuild_components(self) -> None:
        """Component id/size of every node of ``G - S`` (None for S)."""
        graph = self.dyn.graph
        sep = set(self.separator_path)
        self._comp_id: Dict[Node, int] = {}
        self._comp_size: Dict[int, int] = {}
        next_id = 0
        for start in graph.nodes:
            if start in sep or start in self._comp_id:
                continue
            stack = [start]
            self._comp_id[start] = next_id
            size = 0
            while stack:
                v = stack.pop()
                size += 1
                for u in graph.neighbors(v):
                    if u in sep or u in self._comp_id:
                        continue
                    self._comp_id[u] = next_id
                    stack.append(u)
            self._comp_size[next_id] = size
            next_id += 1
        self._comps_dirty = False

    # ------------------------------------------------------------------
    # incremental repair
    # ------------------------------------------------------------------
    def _repair_one(self, update: Update) -> None:
        op, u, v = update
        if op == "insert":
            self._separator_after_insert(u, v)
            self._dfs_after_insert(u, v)
        else:
            self._separator_after_delete(u, v)
            self._dfs_after_delete(u, v)

    # -- separator side ------------------------------------------------
    def _separator_after_insert(self, u: Node, v: Node) -> None:
        sep = set(self.separator_path)
        if u in sep or v in sep:
            return  # components of G - S are untouched
        if self._comps_dirty:
            self._rebuild_components()
        cu, cv = self._comp_id[u], self._comp_id[v]
        if cu == cv:
            return
        merged = self._comp_size[cu] + self._comp_size[cv]
        if "ignore-separator-merge" in self.repair_bugs:
            # Injected bug: merge the bookkeeping but never re-balance.
            self._merge_components(cu, cv)
            return
        if merged > math.floor(2 * self.n / 3):
            self._recompute_separator()
        else:
            self._merge_components(cu, cv)

    def _merge_components(self, cu: int, cv: int) -> None:
        if self._comp_size[cu] < self._comp_size[cv]:
            cu, cv = cv, cu
        for node, cid in self._comp_id.items():
            if cid == cv:
                self._comp_id[node] = cu
        self._comp_size[cu] += self._comp_size.pop(cv)

    def _separator_after_delete(self, u: Node, v: Node) -> None:
        path = self.separator_path
        sep = set(path)
        on_path_edge = any(
            {path[i], path[i + 1]} == {u, v} for i in range(len(path) - 1)
        )
        closing_edge = len(path) >= 2 and {path[0], path[-1]} == {u, v}
        tree_edge = (
            self._sep_tree_parent.get(u) == v or self._sep_tree_parent.get(v) == u
        )
        if on_path_edge or closing_edge or tree_edge:
            # The T-path itself, its closing edge, or its spanning tree
            # lost an edge: the separator's cycle structure is damaged
            # beyond local patching.
            self._recompute_separator()
            return
        if u not in sep and v not in sep:
            # A component of G - S may have split; sizes only shrink, so
            # balance holds, but the merge bookkeeping must be rebuilt
            # before the next insert consults it.
            self._comps_dirty = True

    def _finalize_separator(self) -> None:
        """The certified part of the fallback: re-certify, else recompute.

        A kept separator can lose certificate feasibility without losing
        any tracked edge (inserts can crowd out the virtual closing
        corner).  Re-certifying on the *current* embedding after every
        mutated batch makes the certificate itself the fallback trigger.
        """
        cert = self._certify_current()
        if cert not in _SOUND_CERTIFICATES:
            self._recompute_separator()
        else:
            self.certificate = cert

    def _certify_current(self) -> str:
        graph = self.dyn.graph
        cfg = PlanarConfiguration(
            graph,
            self.dyn.rotation.copy(),
            RootedTree(self._sep_tree_parent, self._sep_tree_root),
        )
        return certify_cycle(cfg, list(self.separator_path))

    # -- DFS side ------------------------------------------------------
    def _dfs_after_insert(self, u: Node, v: Node) -> None:
        tree = self.tree
        if tree.is_ancestor(u, v) or tree.is_ancestor(v, u):
            self.stats["noop_repairs"] += 1
            return  # a back edge: the DFS characterization still holds
        if "keep-cross-edges" in self.repair_bugs:
            # Injected bug: pretend a cross edge needs no repair.  The
            # post-batch check_dfs_tree oracle must catch this.
            self.stats["noop_repairs"] += 1
            return
        self._repair_region(tree.lca(u, v))

    def _dfs_after_delete(self, u: Node, v: Node) -> None:
        if self.parent.get(u) == v:
            child = u
        elif self.parent.get(v) == u:
            child = v
        else:
            self.stats["noop_repairs"] += 1
            return  # a non-tree edge: fewer edges to characterize
        # The orphaned subtree re-attaches only to ancestors of its old
        # parent (the DFS property); repair from the shallowest one.
        subtree = self._subtree_nodes(child)
        members = set(subtree)
        graph = self.dyn.graph
        best: Optional[Node] = None
        for x in subtree:
            for y in graph.neighbors(x):
                if y in members:
                    continue
                if best is None or self.tree.depth[y] < self.tree.depth[best]:
                    best = y
        if best is None:  # pragma: no cover - bridge deletes are rejected
            raise MutationError("tree-edge delete left the subtree detached")
        self._repair_region(best)

    def _subtree_nodes(self, w: Node) -> List[Node]:
        out = [w]
        stack = [w]
        while stack:
            v = stack.pop()
            for c in self.tree.children[v]:
                out.append(c)
                stack.append(c)
        return out

    def _repair_region(self, w: Node) -> None:
        region = self._subtree_nodes(w)
        if len(region) > self.fallback_bound():
            self.stats["fallbacks"] += 1
            self._recompute_all()
            return
        graph = self.dyn.graph
        sub = graph.subgraph(region).copy()
        ledger = self._ledger(sub, w)
        repaired = dfs_tree(sub, w, ledger=ledger)
        for node in region:
            if node != w:
                self.parent[node] = repaired.parent[node]
        self.tree = RootedTree(self.parent, self.root)
        self._charge(ledger)
        self.stats["region_repairs"] += 1
        self.stats["region_nodes"] += len(region)

    # ------------------------------------------------------------------
    # oracles
    # ------------------------------------------------------------------
    def _verify(self) -> None:
        graph = self.dyn.graph
        try:
            check_separator(graph, list(self.separator_path))
            check_dfs_tree(graph, self.parent, self.root)
        except VerificationError as exc:
            raise UnsoundRepairError(
                f"repaired state failed its oracle after "
                f"{self.applied_updates} update(s): {exc}"
            ) from exc
        if self.certificate not in _SOUND_CERTIFICATES:
            raise UnsoundRepairError(
                f"repaired separator lost its cycle certificate "
                f"(got {self.certificate!r}) after "
                f"{self.applied_updates} update(s)"
            )
