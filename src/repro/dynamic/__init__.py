"""Dynamic graphs: planarity-preserving churn and incremental repair.

The package has two layers:

* :mod:`repro.dynamic.mutations` — the mutation model: edge inserts and
  deletes that keep the instance connected and planar (with its rotation
  system repaired in place), plus :func:`flap_updates`, the seeded bridge
  from the fault layer's ``edge_flap`` coins to topology churn.
* :mod:`repro.dynamic.repair` — :class:`DynamicPipeline`, the incremental
  separator/DFS repair engine with certified fallback to full recompute,
  whose every repaired state is oracle-checked before it can be observed.
"""

from .mutations import (
    DynamicPlanarGraph,
    MutationError,
    Update,
    apply_updates_graph,
    flap_updates,
)
from .repair import KNOWN_REPAIR_BUGS, DynamicPipeline, UnsoundRepairError

__all__ = [
    "DynamicPipeline",
    "DynamicPlanarGraph",
    "KNOWN_REPAIR_BUGS",
    "MutationError",
    "UnsoundRepairError",
    "Update",
    "apply_updates_graph",
    "flap_updates",
]
