"""Jordan-curve regions of an embedded cycle (dual-graph flood fill).

Given a simple cycle of an embedded planar graph, its dual edges form a
minimal cut of the dual graph: deleting them leaves exactly two face
components — the two sides of the Jordan curve.  This module computes the
two sides purely combinatorially (no geometry), which makes it the primary
ground-truth oracle for "which nodes are inside a fundamental face"
(DESIGN.md §1).  The paper's algorithmic predicates (Remark 1, Claims 1/4,
Definition 2) are property-tested against it.

The *outside* is designated by a half-edge known to border the outer region
— in a configuration, the corner at the root where the virtual root
:math:`r_0` of Section 4 sits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from ..planar.rotation import RotationSystem

Node = Hashable
HalfEdge = Tuple[Node, Node]

__all__ = ["CycleRegions", "cycle_regions", "RegionError"]


class RegionError(ValueError):
    """Raised when the claimed cycle does not split the embedding in two."""


class CycleRegions:
    """The two sides of an embedded simple cycle.

    Attributes
    ----------
    inside_nodes:
        Nodes strictly inside (not on the cycle).
    outside_nodes:
        Nodes strictly outside (not on the cycle).
    cycle_nodes:
        The cycle itself.
    """

    __slots__ = ("inside_nodes", "outside_nodes", "cycle_nodes")

    def __init__(
        self,
        inside_nodes: Set[Node],
        outside_nodes: Set[Node],
        cycle_nodes: Set[Node],
    ):
        self.inside_nodes = inside_nodes
        self.outside_nodes = outside_nodes
        self.cycle_nodes = cycle_nodes


def cycle_regions(
    rotation: RotationSystem,
    cycle: Sequence[Node],
    outside_halfedge: HalfEdge,
) -> CycleRegions:
    """Split the embedding along ``cycle``.

    Parameters
    ----------
    rotation:
        The embedding; must contain every cycle edge (insert virtual edges
        first via :meth:`RotationSystem.insert_edge`).
    cycle:
        The cycle as an ordered node sequence (closing edge implied).
    outside_halfedge:
        A half-edge whose face is declared *outside*.

    Raises
    ------
    RegionError
        If the cycle is not simple, or does not split the faces in exactly
        two components (i.e. it is not a cycle of this embedding).
    """
    cycle_nodes = set(cycle)
    if len(cycle_nodes) != len(cycle) or len(cycle) < 3:
        raise RegionError("cycle must be a simple cycle on >= 3 nodes")
    cycle_edges: Set[FrozenSet[Node]] = set()
    for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
        if not rotation.has_edge(a, b):
            raise RegionError(f"cycle edge {a!r}-{b!r} is not embedded")
        cycle_edges.add(frozenset((a, b)))

    # Enumerate faces and index half-edges.
    faces = rotation.faces()
    face_of: Dict[HalfEdge, int] = {}
    for idx, walk in enumerate(faces):
        for a, b in zip(walk, walk[1:] + walk[:1]):
            face_of[(a, b)] = idx

    if outside_halfedge not in face_of:
        raise RegionError(f"outside half-edge {outside_halfedge!r} is not embedded")

    # Face adjacency across non-cycle edges only.
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(len(faces))}
    for (a, b), fab in face_of.items():
        if frozenset((a, b)) in cycle_edges:
            continue
        fba = face_of[(b, a)]
        adjacency[fab].add(fba)
        adjacency[fba].add(fab)

    outside_faces: Set[int] = set()
    stack = [face_of[outside_halfedge]]
    while stack:
        f = stack.pop()
        if f in outside_faces:
            continue
        outside_faces.add(f)
        stack.extend(adjacency[f])

    inside_faces = set(range(len(faces))) - outside_faces
    if not inside_faces:
        raise RegionError("cycle does not enclose any face; not a Jordan curve here")
    # Jordan check: the inside must also be connected.
    seed = next(iter(inside_faces))
    seen = {seed}
    stack = [seed]
    while stack:
        f = stack.pop()
        for g in adjacency[f]:
            if g not in seen:
                seen.add(g)
                stack.append(g)
    if seen != inside_faces:
        raise RegionError("cycle does not split the embedding into two regions")

    inside_nodes: Set[Node] = set()
    for f in inside_faces:
        inside_nodes.update(faces[f])
    inside_nodes -= cycle_nodes
    outside_nodes = set(rotation.nodes) - inside_nodes - cycle_nodes
    return CycleRegions(inside_nodes, outside_nodes, cycle_nodes)
