"""Validity checkers for separators and DFS trees.

These are the end-to-end correctness gates of the test suite and experiment
E3: they restate the *definitions* (separator set, Section 1; DFS tree
characterization) independently of any algorithmic machinery, so a bug in
the face/weight chain cannot hide behind itself.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..trees.rooted import RootedTree

Node = Hashable

__all__ = [
    "separator_report",
    "check_separator",
    "check_dfs_tree",
    "check_partial_dfs",
    "surviving_component",
    "check_broadcast_coverage",
    "check_component_dfs",
    "check_mst",
    "SeparatorReport",
    "VerificationError",
]


class VerificationError(AssertionError):
    """A produced artifact violates its definition."""


class SeparatorReport:
    """Balance report of a separator set.

    Attributes
    ----------
    n:
        Number of nodes of the (sub)graph.
    separator_size:
        Number of separator nodes.
    components:
        Sizes of the connected components of ``G - S``, descending.
    max_fraction:
        ``max(components) / n`` (0.0 when nothing remains).
    """

    __slots__ = ("n", "separator_size", "components")

    def __init__(self, n: int, separator_size: int, components: List[int]):
        self.n = n
        self.separator_size = separator_size
        self.components = components

    @property
    def max_fraction(self) -> float:
        return (self.components[0] / self.n) if self.components else 0.0

    @property
    def balanced(self) -> bool:
        """The separator-set condition: every component has <= 2n/3 nodes."""
        return all(3 * c <= 2 * self.n for c in self.components)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SeparatorReport(n={self.n}, |S|={self.separator_size}, "
            f"max_fraction={self.max_fraction:.3f})"
        )


def separator_report(graph: nx.Graph, separator: Iterable[Node]) -> SeparatorReport:
    """Component-size report of removing ``separator`` from ``graph``."""
    sep = set(separator)
    unknown = sep - set(graph.nodes)
    if unknown:
        raise VerificationError(f"separator contains non-nodes: {sorted(map(repr, unknown))}")
    rest = graph.subgraph(set(graph.nodes) - sep)
    components = sorted((len(c) for c in nx.connected_components(rest)), reverse=True)
    return SeparatorReport(len(graph), len(sep), components)


def check_separator(
    graph: nx.Graph,
    separator: Sequence[Node],
    tree: Optional[RootedTree] = None,
) -> SeparatorReport:
    """Assert that ``separator`` is a cycle separator of ``graph``.

    Checks the balance condition (every component of ``G - S`` has at most
    ``2n/3`` nodes) and, when ``tree`` is given, that the separator is a
    T-path (the structural half of "cycle separator": its endpoints can be
    joined by a real or embedding-compatible virtual edge — the algorithm
    certifies that constructively, see :mod:`repro.core.augment`).
    """
    report = separator_report(graph, separator)
    if not report.balanced:
        raise VerificationError(
            f"unbalanced separator: components {report.components} of n={report.n}"
        )
    if tree is not None:
        for a, b in zip(separator, separator[1:]):
            if tree.parent.get(a) != b and tree.parent.get(b) != a:
                raise VerificationError(f"separator is not a T-path at {a!r}-{b!r}")
    return report


def check_dfs_tree(graph: nx.Graph, parent: Dict[Node, Optional[Node]], root: Node) -> RootedTree:
    """Assert that ``parent`` encodes a DFS tree of ``graph`` rooted at ``root``.

    Uses the classical characterization: a rooted spanning tree ``T`` of a
    graph ``G`` is a DFS tree iff every non-tree edge of ``G`` joins an
    ancestor-descendant pair in ``T``.  Returns the verified tree.
    """
    if set(parent) != set(graph.nodes):
        missing = set(graph.nodes) - set(parent)
        raise VerificationError(f"not spanning; missing {sorted(map(repr, missing))[:5]}")
    tree = RootedTree(parent, root)
    for p, c in tree.edges():
        if not graph.has_edge(p, c):
            raise VerificationError(f"tree edge {p!r}-{c!r} is not a graph edge")
    for a, b in graph.edges():
        if not (tree.is_ancestor(a, b) or tree.is_ancestor(b, a)):
            raise VerificationError(
                f"cross edge {a!r}-{b!r}: endpoints are unrelated in the tree, "
                "so this is not a DFS tree"
            )
    return tree


def check_mst(graph: nx.Graph, edges: Iterable[Tuple[Node, Node]]) -> float:
    """Assert that ``edges`` is a minimum spanning tree of ``graph``.

    Checks the definition directly: every edge is a graph edge, the edge
    set spans all nodes acyclically (``n - 1`` edges, connected), and the
    total weight matches an independently computed MST weight (weights
    default to 1, as in :mod:`repro.congest.mst`).  Returns the verified
    total weight.
    """
    edge_list = list(edges)
    for a, b in edge_list:
        if not graph.has_edge(a, b):
            raise VerificationError(f"MST edge {a!r}-{b!r} is not a graph edge")
    n = len(graph)
    if len(edge_list) != n - 1:
        raise VerificationError(
            f"not a spanning tree: {len(edge_list)} edges for n={n}"
        )
    tree = nx.Graph(edge_list)
    tree.add_nodes_from(graph.nodes)
    if not nx.is_connected(tree):
        raise VerificationError("MST edge set is not connected")
    total = sum(graph[a][b].get("weight", 1.0) for a, b in edge_list)
    optimum = sum(
        d.get("weight", 1.0)
        for _, _, d in nx.minimum_spanning_tree(graph, weight="weight").edges(data=True)
    )
    if abs(total - optimum) > 1e-9:
        raise VerificationError(
            f"spanning tree weight {total} != minimum {optimum}"
        )
    return total


def surviving_component(
    graph: nx.Graph, root: Node, crashed: Iterable[Node] = ()
) -> Set[Node]:
    """Nodes still reachable from ``root`` after crash-stop failures.

    The correctness unit for fault-injected runs (docs/MODEL.md, "The
    fault model"): a crashed node is gone, and so is every node it alone
    connected to the root.  Returns the empty set when ``root`` itself
    crashed.
    """
    crashed_set = set(crashed)
    if root in crashed_set:
        return set()
    rest = graph.subgraph(set(graph.nodes) - crashed_set)
    return set(nx.node_connected_component(rest, root))


def check_broadcast_coverage(
    graph: nx.Graph,
    root: Node,
    outputs: Dict[Node, object],
    value: object,
    crashed: Iterable[Node] = (),
) -> Set[Node]:
    """Assert a broadcast under crash faults covered the surviving component.

    Every non-crashed node still connected to ``root`` must have recorded
    exactly ``value`` — the guarantee the ack/retransmit wrapper makes.
    Nodes disconnected by the crashes are *not* required to be covered
    (they cannot be, by any protocol).  Returns the surviving component.
    """
    component = surviving_component(graph, root, crashed)
    if not component:
        raise VerificationError(
            f"root {root!r} is in the crashed set; no surviving component"
        )
    wrong = sorted(
        (v for v in component if outputs.get(v) != value), key=repr
    )
    if wrong:
        raise VerificationError(
            f"{len(wrong)} surviving node(s) in the root's component missed "
            f"the broadcast: {wrong[:5]}"
        )
    return component


def check_component_dfs(
    graph: nx.Graph,
    parent: Dict[Node, Optional[Node]],
    root: Node,
    crashed: Iterable[Node] = (),
) -> RootedTree:
    """Assert ``parent`` encodes a DFS tree of the surviving component.

    The faulted analogue of :func:`check_dfs_tree`: restrict the graph to
    the nodes still connected to ``root`` after removing ``crashed``,
    require the parent map to span exactly that component with parents
    inside it, and check the ancestor-descendant characterization on the
    induced subgraph.
    """
    component = surviving_component(graph, root, crashed)
    if not component:
        raise VerificationError(
            f"root {root!r} is in the crashed set; no surviving component"
        )
    restricted = {v: parent.get(v) for v in component}
    for v, p in restricted.items():
        if p is not None and p not in component:
            raise VerificationError(
                f"surviving node {v!r} has parent {p!r} outside the "
                f"surviving component (crashed or disconnected)"
            )
    return check_dfs_tree(graph.subgraph(component), restricted, root)


def check_partial_dfs(
    graph: nx.Graph,
    parent: Dict[Node, Optional[Node]],
    root: Node,
) -> RootedTree:
    """Assert the partial-DFS-tree invariant (paper Section 3.2).

    ``parent`` covers a subset of the nodes; the invariant is that every
    graph edge with *both* endpoints already in the partial tree joins an
    ancestor-descendant pair — the property the DFS-RULE preserves and the
    reason the final tree is a DFS tree.  Returns the verified partial
    tree.
    """
    joined = set(parent)
    tree = RootedTree(dict(parent), root)
    for p, c in tree.edges():
        if not graph.has_edge(p, c):
            raise VerificationError(f"tree edge {p!r}-{c!r} is not a graph edge")
    for a, b in graph.edges():
        if a in joined and b in joined:
            if not (tree.is_ancestor(a, b) or tree.is_ancestor(b, a)):
                raise VerificationError(
                    f"partial-DFS invariant violated at {a!r}-{b!r}"
                )
    return tree
