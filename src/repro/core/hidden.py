"""Hidden nodes and hiding edges — the paper's Definition 4 / Lemma 6.

A node ``z`` inside a fundamental face :math:`F_e` (``e = uv``) is *hidden*
when some real fundamental edge ``f`` contained in :math:`F_e` walls it off
from ``u``: either ``f`` avoids ``u`` entirely (condition 1), or ``f`` is
incident to ``u`` but drops part of :math:`T_u \\cap F_e` (condition 2).
Lemma 6 shows a leaf is :math:`(T, F_e)`-compatible with ``u`` exactly when
it is not hidden, which is how Phase 4 decides whether the virtual edge to
its chosen leaf can actually be drawn.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple

from .config import PlanarConfiguration
from .faces import FaceView, face_view

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["hiding_edges", "is_hidden", "hiding_edges_in_region"]


def _t_u_face_nodes(cfg: PlanarConfiguration, fv: FaceView, interior: Set[Node]) -> Set[Node]:
    """:math:`V(T_u) \\cap V(F_e)` — ``u`` plus its inside child subtrees."""
    tree = cfg.tree
    out: Set[Node] = {fv.u}
    for c in fv.children_inside(fv.u):
        out.update(tree.subtree_nodes(c))
    return out


def hiding_edges(
    cfg: PlanarConfiguration,
    fv: FaceView,
    z: Node,
    interior: Set[Node] | None = None,
) -> List[Tuple[Edge, FaceView]]:
    """All real fundamental edges hiding ``z`` in :math:`F_e`.

    Returns pairs ``(f, face_view_of_f)``; empty means ``z`` is
    :math:`(T, F_e)`-compatible with ``u`` (for a leaf ``z``, by Lemma 6).
    """
    if interior is None:
        interior = fv.interior()
    if z not in interior:
        raise ValueError(f"{z!r} is not inside the face")
    u = fv.u
    t_u_nodes = _t_u_face_nodes(cfg, fv, interior)
    out: List[Tuple[Edge, FaceView]] = []
    for f in cfg.real_fundamental_edges():
        if set(f) == {fv.u, fv.v}:
            continue
        if not fv.contains_edge(f, interior_cache=interior):
            continue
        f_view = face_view(cfg, f)
        f_interior = f_view.interior()
        if z not in f_interior:
            continue
        if u not in f:
            out.append((f, f_view))
        elif not t_u_nodes <= (f_interior | set(f_view.border)):
            out.append((f, f_view))
    return out


def is_hidden(
    cfg: PlanarConfiguration,
    fv: FaceView,
    z: Node,
    interior: Set[Node] | None = None,
) -> bool:
    """Whether ``z`` is hidden in :math:`F_e` (Definition 4)."""
    return bool(hiding_edges(cfg, fv, z, interior))


def hiding_edges_in_region(
    cfg: PlanarConfiguration,
    region: Set[Node],
    border: Set[Node],
    anchor: Node,
    z: Node,
) -> List[Tuple[Edge, FaceView]]:
    """Hiding edges for the *virtual* faces of Phase 5's reduction.

    Phase 5 simulates Phase 4 inside a virtual fundamental face whose
    interior is one of the outside sets :math:`F^e_\\ell / F^e_r` and whose
    augmentation endpoint is the root (Lemma 8's construction).  A real
    fundamental edge ``f`` hides ``z`` here when its face lies within the
    region and encloses ``z``; the ``u``-incidence exemption of Definition 4
    applies to ``anchor`` (the root).
    """
    out: List[Tuple[Edge, FaceView]] = []
    allowed = region | border
    for f in cfg.real_fundamental_edges():
        f_view = face_view(cfg, f)
        f_interior = f_view.interior()
        if z not in f_interior:
            continue
        f_nodes = f_interior | set(f_view.border)
        if not f_nodes <= allowed:
            continue
        if anchor not in f:
            out.append((f, f_view))
        elif not (region & set(cfg.graph.nodes)) <= f_nodes:
            out.append((f, f_view))
    return out
