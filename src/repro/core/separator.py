"""Deterministic cycle-separator computation — the paper's Theorem 1.

:func:`cycle_separator` runs the Section 5.3 phase machine on one planar
configuration; :func:`compute_cycle_separators` is the multi-part version of
Theorem 1 (one separator per part of a partition, computed "in parallel" —
the CONGEST rounds are charged by the ledger, the results are exactly the
per-part separators).

Phase map (Section 5.3):

* *Phase 1* (precomputation) happens inside :class:`PlanarConfiguration`
  (embedding, spanning tree, DFS orders, subtree sizes) — the ledger charges
  its :math:`\\tilde{O}(D)` cost.
* *Phase 2*: the part is a tree → root-to-``v0`` path (RANGE over subtree
  sizes; centroid fallback per DESIGN.md's erratum).
* *Phase 3*: some real fundamental face has weight in ``[n/3, 2n/3]`` →
  its border path.
* *Phase 4*: some face has weight ``> 2n/3`` → full augmentation from ``u``
  inside a containment-minimal such face; sub-phase 4.1 (window hit,
  compatible → path to the hit; hidden → Claim 6's hiding-edge fallback),
  sub-phase 4.2 (all augmented weights ``< n/3`` → the face's own border).
* *Phase 5*: all weights ``< n/3`` → a containment-maximal face; either its
  border path separates, or one outside set exceeds ``2n/3`` and the
  algorithm inserts the root edge of Lemma 8 and recurses into Phase 4 on
  the extended configuration (the paper's ``G' = G + r_T u'`` construction;
  a separator of the supergraph is a separator of ``G``).

The implementation keeps the paper's structure but replaces "it can be
shown that the insertion exists" steps with *constructive* insertions
validated against the region oracle (:mod:`repro.core.augment`), so every
emitted separator is backed by an explicit planar witness.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..planar.checks import require_connected
from ..trees.centroid import phase2_separator_node
from .augment import balanced_insertion, heavy_nested_insertion
from .config import PlanarConfiguration
from .faces import FaceView, face_view
from .hidden import hiding_edges
from .weights import augmented_weight, face_order, side_sets, weight

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["SeparatorResult", "cycle_separator", "compute_cycle_separators", "SeparatorError"]


class SeparatorError(RuntimeError):
    """An algorithm invariant failed (indicates a bug, never bad input)."""


class SeparatorResult:
    """A cycle separator: a T-path whose removal balances the part.

    Attributes
    ----------
    path:
        The separator nodes in T-path order.
    phase:
        Which phase emitted it (``"trivial"``, ``"phase2"``, ``"phase3"``,
        ``"phase4.1"``, ``"phase4.1-hidden"``, ``"phase4.2"``, ``"phase5"``),
        with the recursion depth appended as ``"+k"`` when the constructive
        Lemma 7/8 edge insertions were exercised.
    rule:
        Finer-grained annotation (e.g. Phase 2's centroid fallback).
    """

    __slots__ = ("path", "phase", "rule")

    def __init__(self, path: List[Node], phase: str, rule: str = ""):
        self.path = path
        self.phase = phase
        self.rule = rule

    @property
    def nodes(self) -> Set[Node]:
        """The separator as a set."""
        return set(self.path)

    @property
    def endpoints(self) -> Tuple[Node, Node]:
        """The two ends of the separator path."""
        return (self.path[0], self.path[-1])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeparatorResult(len={len(self.path)}, phase={self.phase!r})"


# Recursion ceiling for the constructive edge-insertion descent; a planar
# graph admits at most 3n - 6 edges, so genuine runs stay far below this.
_MAX_DESCENT = 64


def cycle_separator(
    cfg: PlanarConfiguration,
    ledger=None,
    *,
    ablation: frozenset = frozenset(),
) -> SeparatorResult:
    """Compute a cycle separator of ``cfg``'s graph (Theorem 1, one part).

    Parameters
    ----------
    cfg:
        The planar configuration of the (sub)graph.
    ledger:
        Optional :class:`repro.congest.ledger.RoundLedger` for round charges.
    ablation:
        Experiment-only switches that disable the reproduction's repairs of
        the paper's proof gaps (DESIGN.md §3), used by the ablation
        benchmark to show they are load-bearing:
        ``"no-phase3b"`` skips Lemma 1 condition 3;
        ``"no-emit-check"`` emits Sub-phase 4.2 / Claim 6 / Lemma 8 middle
        outputs exactly as the paper states them, without verification.
    """
    result = _separate(cfg, cfg.n, depth=0, ledger=ledger, ablation=ablation)
    _check_is_tree_path(cfg, result.path)
    return result


def _charge(ledger, subroutine: str, times: int = 1) -> None:
    if ledger is not None:
        ledger.charge_subroutine(subroutine, times)


def _separate(
    cfg: PlanarConfiguration,
    n: int,
    depth: int,
    ledger,
    ablation: frozenset = frozenset(),
) -> SeparatorResult:
    if depth > _MAX_DESCENT:  # pragma: no cover - invariant guard
        raise SeparatorError("constructive descent did not terminate")
    tree = cfg.tree
    if n <= 2:
        return SeparatorResult(list(tree.iter_preorder()), "trivial")

    fundamental = cfg.real_fundamental_edges()
    _charge(ledger, "precomputation")

    # ---------------------------------------------------------------- Phase 2
    if not fundamental:
        _charge(ledger, "partwise-aggregation", 2)  # tree test + RANGE
        v0, rule = phase2_separator_node(tree)
        _charge(ledger, "mark-path")
        return SeparatorResult(tree.path(tree.root, v0), "phase2", rule)

    # ---------------------------------------------------------------- Phase 3
    views = {e: face_view(cfg, e) for e in fundamental}
    weights = {e: weight(cfg, views[e]) for e in fundamental}
    _charge(ledger, "weights")
    _charge(ledger, "partwise-aggregation")  # RANGE over the window
    in_window = [e for e, w in weights.items() if n <= 3 * w <= 2 * n]
    if in_window:
        e = min(in_window, key=lambda e: (weights[e], repr(e)))
        _charge(ledger, "mark-path")
        return SeparatorResult(views[e].border, "phase3")

    # ------------------------------------------------------------- Phase 3b
    # Lemma 1 condition 3, the "particular and easy case": a border path long
    # enough that both Jordan sides are light.  For e = uv the components of
    # G - P_e lie inside (<= |F̊_e|) or outside (<= n - |F̊_e| - |P_e|); both
    # bounds are computable at the endpoints from the weight, the depths and
    # the LCA.  This case is what rescues path-degenerate spanning trees
    # (e.g. DFS trees of grids), where Phase 5's root-edge reduction has
    # nothing to enclose; see DESIGN.md's errata.
    balanced = []
    if "no-phase3b" in ablation:
        weights_iter = {}
    else:
        weights_iter = weights
    for e, w in weights_iter.items():
        u, v = e
        path_len = tree.path_length(u, v) + 1
        inner = w if tree.is_ancestor(u, v) else w - (path_len - (tree.depth[u] - tree.depth[tree.lca(u, v)]))
        if 3 * inner <= 2 * n and 3 * (n - inner - path_len) <= 2 * n:
            balanced.append((path_len, e))
    if balanced:
        _charge(ledger, "partwise-aggregation")
        _, e = min(balanced, key=lambda pe: (pe[0], repr(pe[1])))
        _charge(ledger, "mark-path")
        return SeparatorResult(views[e].border, "phase3b")

    # ---------------------------------------------------------------- Phase 4
    heavy = [e for e, w in weights.items() if 3 * w > 2 * n]
    if heavy:
        e = _containment_minimal(cfg, views, heavy)
        _charge(ledger, "not-contains")
        return _phase4(cfg, views[e], n, depth, ledger, ablation)

    # ---------------------------------------------------------------- Phase 5
    e = _containment_maximal(cfg, views, fundamental)
    _charge(ledger, "not-contained")
    fv = views[e]
    interior = fv.interior()
    left, right = side_sets(cfg, fv, interior)
    _charge(ledger, "partwise-aggregation")  # broadcast of |F_l|, |F_r|
    if 3 * len(left) <= n and 3 * len(right) <= n:
        # Both outside sets light: the whole outside is at most 2n/3 and the
        # inside is below n/3, so the border path separates.
        _charge(ledger, "mark-path")
        return SeparatorResult(fv.border, "phase5")
    if 3 * len(left) <= 2 * n and 3 * len(right) <= 2 * n:
        # One outside set is in the window.  The paper outputs the u-v path
        # claiming it contains the root-to-v path; that only holds when the
        # root is the path's LCA (see DESIGN.md errata).  The generally valid
        # separator is the root-to-endpoint path itself: it slits the disk
        # from the outer anchor, leaving <= n - |F_side| <= 2n/3 on one side
        # and <= |F_side| + |inside| <= 2n/3 on the other.
        endpoint = fv.v if 3 * len(right) >= n else fv.u
        if "no-emit-check" in ablation:
            _charge(ledger, "mark-path")
            return SeparatorResult(fv.border, "phase5")
        return _emit_checked(
            cfg, tree.path(tree.root, endpoint), "phase5", n, ledger
        )

    # One outside set is heavy: Lemma 8's rooted construction.  The virtual
    # faces from the root sweep prefixes of the DFS orders — the face of
    # ``r..z`` plus a compatible closing edge encloses the order-prefix up to
    # :math:`T_z`'s block, of size pi(z) + n_T(z) - d_T(z) - 2.  Any window
    # hit whose edge is constructively insertable yields a separator: the
    # inside is the window-sized interior, the outside is at most
    # ``n - n/3``.  Both sweep directions are tried (the mirrored embedding
    # convention makes "left" ambiguous; the insertion filter disambiguates).
    result = _rooted_sweep(cfg, n, ledger)
    if result is None:
        raise SeparatorError(
            "Phase 5: no compatible rooted window edge exists; Lemma 8 "
            "guarantees one should"
        )
    return result


def _phase4(
    cfg: PlanarConfiguration,
    fv: FaceView,
    n: int,
    depth: int,
    ledger,
    ablation: frozenset = frozenset(),
) -> SeparatorResult:
    """Sub-phases 4.1 / 4.2 on a containment-minimal heavy face."""
    suffix = f"+{depth}" if depth else ""
    interior = fv.interior()
    order = face_order(cfg, fv.edge)
    p_u = fv.p_value(fv.u)
    _charge(ledger, "detect-face")
    _charge(ledger, "full-augmentation")
    # The paper's search space: T-leaves inside the face (Remark 2 reduces
    # every augmentation to its extreme leaf; Lemma 6's compatibility
    # characterization is a leaf statement).
    candidates = sorted(
        (z for z in interior if not cfg.tree.children[z]),
        key=lambda z: (order[z], repr(z)),
    )
    aug = {
        z: augmented_weight(cfg, fv, z, p_u)
        for z in candidates
        if not cfg.graph.has_edge(fv.u, z)
    }
    window = [z for z in candidates if z in aug and n <= 3 * aug[z] <= 2 * n]

    # Sub-phase 4.1: a window hit with a constructive compatible insertion.
    _charge(ledger, "partwise-aggregation")  # RANGE over augmented weights
    tree = cfg.tree
    for z in window:
        prefer_b = cfg.t(z)[0] if tree.parent[z] is not None else None
        _charge(ledger, "hidden-problem")
        if balanced_insertion(cfg, fv.u, z, n, prefer_a=fv.v, prefer_b=prefer_b) is not None:
            _charge(ledger, "mark-path")
            return SeparatorResult(tree.path(fv.u, z), "phase4.1" + suffix)
    if window:
        # No window node is compatible: by Lemma 6 they are hidden; apply
        # Claim 6's fallback via a containment-maximal hiding edge of the
        # leftmost window node.
        z = window[0]
        return _hidden_fallback(cfg, fv, z, interior, suffix, ledger, ablation)

    heavy = [z for z in candidates if z in aug and 3 * aug[z] > 2 * n]
    if not heavy:
        # Sub-phase 4.2: every augmentation is light; the paper concludes
        # the face border separates.  The conclusion fails on degenerate
        # path-shaped interiors, so the emission is checked.
        if "no-emit-check" in ablation:
            _charge(ledger, "mark-path")
            return SeparatorResult(fv.border, "phase4.2" + suffix)
        return _emit_checked(cfg, fv.border, "phase4.2" + suffix, n, ledger)

    # Window overshoot: the leftmost node with weight >= n/3 is heavy.  If
    # its edge is insertable, the new real face is heavy but strictly
    # smaller; recurse (the paper's containment descent).  Otherwise Claim 6
    # applies to it directly.
    t = min(
        (z for z in candidates if z in aug and 3 * aug[z] >= n),
        key=lambda z: (order[z], repr(z)),
    )
    prefer_b = cfg.t(t)[0] if tree.parent[t] is not None else None
    _charge(ledger, "hidden-problem")
    if balanced_insertion(cfg, fv.u, t, n, prefer_a=fv.v, prefer_b=prefer_b) is not None:
        _charge(ledger, "mark-path")
        return SeparatorResult(tree.path(fv.u, t), "phase4.1" + suffix)
    heavy_step = heavy_nested_insertion(cfg, fv, t, n, interior)
    if heavy_step is not None:
        cfg2, _ = heavy_step
        return _separate(cfg2, n, depth + 1, ledger, ablation)
    return _hidden_fallback(cfg, fv, t, interior, suffix, ledger, ablation)



def _rooted_sweep(cfg: PlanarConfiguration, n: int, ledger) -> Optional[SeparatorResult]:
    """Lemma 8's rooted construction, generalized to a window sweep.

    The virtual face of ``root..z`` plus a compatible closing edge encloses
    the order-prefix up to :math:`T_z`'s block, of size
    :math:`\\pi(z) + n_T(z) - d_T(z) - 2`.  Any window hit whose edge has a
    constructive balanced insertion yields a separator.  Both sweep
    directions are tried (the mirrored embedding convention makes "left"
    ambiguous; the insertion filter disambiguates).  Returns ``None`` when
    no rooted window edge is compatible.
    """
    tree = cfg.tree
    rooted: List[Tuple[int, str, Node]] = []
    for z in cfg.graph.nodes:
        if z == tree.root:
            continue
        for tag, pi in (("l", cfg.pi_left), ("r", cfg.pi_right)):
            w = pi[z] + tree.subtree_size[z] - tree.depth[z] - 2
            if n <= 3 * w <= 2 * n:
                rooted.append((w, tag, z))
    rooted.sort(key=lambda t: (abs(2 * t[0] - n), t[1], repr(t[2])))
    _charge(ledger, "partwise-aggregation")
    seen = set()
    for w, tag, z in rooted:
        if z in seen or cfg.graph.has_edge(tree.root, z):
            continue
        seen.add(z)
        _charge(ledger, "hidden-problem")
        if balanced_insertion(cfg, tree.root, z, n) is not None:
            _charge(ledger, "mark-path")
            return SeparatorResult(tree.path(tree.root, z), "phase5-rooted")
    return None


def _is_balanced(cfg: PlanarConfiguration, path: List[Node], n: int, ledger) -> bool:
    """Distributed-checkable balance test of a marked path.

    In CONGEST this is one mark-path plus a component-size part-wise
    aggregation over :math:`G - P` (Lemma 10); here the component sizes are
    computed directly and the rounds are charged.
    """
    _charge(ledger, "partwise-aggregation")
    rest = cfg.graph.subgraph(set(cfg.graph.nodes) - set(path))
    return all(3 * len(c) <= 2 * n for c in nx.connected_components(rest))


def _emit_checked(
    cfg: PlanarConfiguration,
    path: List[Node],
    phase: str,
    n: int,
    ledger,
) -> SeparatorResult:
    """Emit a candidate separator whose balance the paper's case analysis
    does not certify constructively, verifying it first and falling back to
    the certified rooted sweep.

    The paper's Sub-phase 4.2, Claim-6 fallback and Lemma 8's middle case
    all assume sweep coverage properties that fail on path-degenerate
    spanning trees (DESIGN.md errata); the verify-and-fallback step is
    itself an :math:`\\tilde{O}(D)` deterministic CONGEST subroutine, so
    the round budget is unchanged.
    """
    if _is_balanced(cfg, path, n, ledger):
        _charge(ledger, "mark-path")
        return SeparatorResult(path, phase)
    result = _rooted_sweep(cfg, n, ledger)
    if result is None:
        raise SeparatorError(
            f"{phase} emission is unbalanced and no rooted fallback exists"
        )
    return result


def _hidden_fallback(
    cfg: PlanarConfiguration,
    fv: FaceView,
    z: Node,
    interior: Set[Node],
    suffix: str,
    ledger,
    ablation: frozenset = frozenset(),
) -> SeparatorResult:
    """Claim 6: mark the path to the far endpoint of a containment-maximal
    hiding edge of ``z``."""
    hidden = hiding_edges(cfg, fv, z, interior)
    _charge(ledger, "hidden-problem")
    _charge(ledger, "not-contained")
    if not hidden:
        raise SeparatorError(
            f"node {z!r} is neither insertable nor hidden in {fv.edge!r}; "
            "Lemma 6 rules this out"
        )
    views = {f: view for f, view in hidden}
    f = _containment_maximal(cfg, views, list(views))
    a, b = f
    z2 = b if cfg.pi_left[a] < cfg.pi_left[b] else a
    n = len(cfg.graph)
    if "no-emit-check" in ablation:
        _charge(ledger, "mark-path")
        return SeparatorResult(cfg.tree.path(fv.u, z2), "phase4.1-hidden" + suffix)
    return _emit_checked(
        cfg, cfg.tree.path(fv.u, z2), "phase4.1-hidden" + suffix, n, ledger
    )


def _containment_minimal(
    cfg: PlanarConfiguration,
    views: Dict[Edge, FaceView],
    candidates: Sequence[Edge],
) -> Edge:
    """A candidate whose face contains no other candidate's face
    (NOT-CONTAINS-PROBLEM, Lemma 18)."""
    order = sorted(candidates, key=lambda e: (len(views[e].face_nodes()), repr(e)))
    for e in order:
        fv = views[e]
        interior = fv.interior()
        if not any(
            f != e and fv.contains_edge(f, interior_cache=interior) for f in candidates
        ):
            return e
    raise SeparatorError("no containment-minimal fundamental edge found")


def _containment_maximal(
    cfg: PlanarConfiguration,
    views: Dict[Edge, FaceView],
    candidates: Sequence[Edge],
) -> Edge:
    """A candidate whose face is contained in no other candidate's face
    (NOT-CONTAINED-PROBLEM, Lemma 17)."""
    order = sorted(
        candidates, key=lambda e: (-len(views[e].face_nodes()), repr(e))
    )
    for e in order:
        if not any(
            f != e
            and views[f].contains_edge(e, interior_cache=views[f].interior())
            for f in candidates
        ):
            return e
    raise SeparatorError("no containment-maximal fundamental edge found")


def _check_is_tree_path(cfg: PlanarConfiguration, path: List[Node]) -> None:
    """Invariant: every separator this module emits is a T-path."""
    for a, b in zip(path, path[1:]):
        if not cfg.is_tree_edge(a, b):
            raise SeparatorError(f"separator is not a T-path at {a!r}-{b!r}")


def compute_cycle_separators(
    graph: nx.Graph,
    parts: Sequence[Sequence[Node]],
    *,
    rotation=None,
    trees: Optional[Dict[int, "object"]] = None,
    ledger=None,
) -> Dict[int, SeparatorResult]:
    """Theorem 1: a cycle separator of every :math:`G[P_i]` of a partition.

    Parameters
    ----------
    graph:
        The (connected, planar) communication graph.
    parts:
        Disjoint node sets, each inducing a connected subgraph.
    rotation:
        Optional precomputed rotation system of ``graph``.
    trees:
        Optional per-part spanning trees (:class:`repro.trees.RootedTree`);
        computed via per-part Borůvka (Lemma 9) when omitted.
    ledger:
        Optional :class:`repro.congest.ledger.RoundLedger`; per-part costs
        are charged as parallel blocks.
    """
    from ..planar.construct import embed, embed_subgraph
    from ..trees.spanning import boruvka_part_spanning_trees

    for i, part in enumerate(parts):
        require_connected(graph.subgraph(part), what=f"part {i}")
    if rotation is None:
        rotation = embed(graph)
        if ledger is not None:
            ledger.charge_subroutine("planar-embedding")
    if trees is None:
        trees = boruvka_part_spanning_trees(graph, parts).trees
        if ledger is not None:
            ledger.charge_subroutine("part-spanning-trees")
    results: Dict[int, SeparatorResult] = {}
    if ledger is not None:
        ledger.begin_parallel()
    for i, part in enumerate(parts):
        subgraph = graph.subgraph(part).copy()
        require_connected(subgraph, what=f"part {i}")
        cfg = PlanarConfiguration(subgraph, embed_subgraph(rotation, part), trees[i])
        if ledger is not None:
            ledger.begin_branch()
        results[i] = cycle_separator(cfg, ledger=ledger)
    if ledger is not None:
        ledger.end_parallel()
    return results
