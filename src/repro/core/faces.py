"""Real fundamental faces: borders, inside arcs, interiors, containment.

For a real fundamental edge :math:`e = uv` of a configuration
:math:`(G, \\mathcal{E}, T)`, the border of the fundamental face
:math:`F_e` is the T-path between ``u`` and ``v`` plus ``e`` (Section 2 of
the paper).  The machinery here answers, purely combinatorially, the
questions the distributed algorithm needs:

* which rotation positions (and hence which neighbors / T-children) of a
  border node point *inside* :math:`F_e`  — the content of the paper's
  Claims 1 and 4;
* the full interior :math:`\\mathring{F}_e` (union of the subtrees hanging
  inside, as in Claim 3's proof);
* whether another fundamental edge is *contained in* :math:`F_e` (used by
  NOT-CONTAINED / NOT-CONTAINS, Section 5.2.4).

The side decision is made **chirality-free**: at the topmost border node
(the LCA ``w``), the outside is the side holding ``w``'s parent slot — for
the root, the virtual-root gap between the last and first rotation position.
Both facts are forced by the paper's convention that fundamental faces never
contain the (virtual) root.  The side then propagates along the border walk,
which is exactly how a face traversal follows one side of a closed walk.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Set, Tuple

from .config import PlanarConfiguration

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["FaceView", "face_view"]


def _arc(start: int, end: int, degree: int) -> List[int]:
    """Positions strictly between ``start`` and ``end``, walking ``+1`` mod
    ``degree``.  ``start == end`` is not a valid arc delimiter pair."""
    out = []
    p = (start + 1) % degree
    while p != end:
        out.append(p)
        p = (p + 1) % degree
    return out


class FaceView:
    """All border-local information about one real fundamental face.

    Built once per fundamental edge; everything else (p-values, interiors,
    containment tests, weights) reads from here.
    """

    __slots__ = (
        "cfg",
        "u",
        "v",
        "lca",
        "border",
        "_border_index",
        "_inside_positions",
        "inside_is_A",
    )

    def __init__(self, cfg: PlanarConfiguration, e: Edge):
        self.cfg = cfg
        self.u, self.v = cfg.orient(e)
        tree = cfg.tree
        self.border: List[Node] = tree.path(self.u, self.v)
        self.lca = tree.lca(self.u, self.v)
        self._border_index: Dict[Node, int] = {
            x: i for i, x in enumerate(self.border)
        }
        if len(self._border_index) != len(self.border):  # pragma: no cover
            raise ValueError("border walk revisits a node")
        self._inside_positions: Dict[Node, Set[int]] = {}
        self.inside_is_A = self._decide_side()
        self._compute_inside_positions()

    # ------------------------------------------------------------------
    # side decision (chirality-free, see module docstring)
    # ------------------------------------------------------------------
    def _walk_neighbors(self, x: Node) -> Tuple[Node, Node]:
        """(previous, next) of ``x`` along the cyclic border walk
        ``u -> ... -> v -> (e) -> u``."""
        i = self._border_index[x]
        prev = self.border[i - 1] if i > 0 else self.v
        nxt = self.border[i + 1] if i + 1 < len(self.border) else self.u
        return prev, nxt

    def _decide_side(self) -> bool:
        """True iff the inside is "side A": positions strictly cw-after the
        incoming walk edge and cw-before the outgoing one."""
        w = self.lca
        prev, nxt = self._walk_neighbors(w)
        i = self.cfg.t_position(w, prev)
        o = self.cfg.t_position(w, nxt)
        # The outside marker (parent slot, or the virtual-root gap at the
        # root) lies in side A exactly when the A-arc wraps past position 0,
        # i.e. when i > o.  The inside is the other side.
        return i < o

    def _compute_inside_positions(self) -> None:
        for x in self.border:
            prev, nxt = self._walk_neighbors(x)
            i = self.cfg.t_position(x, prev)
            o = self.cfg.t_position(x, nxt)
            degree = self.cfg.rotation.degree(x)
            arc = _arc(i, o, degree) if self.inside_is_A else _arc(o, i, degree)
            self._inside_positions[x] = set(arc)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def edge(self) -> Edge:
        """The fundamental edge, oriented by :math:`\\pi_\\ell`."""
        return (self.u, self.v)

    def is_border(self, x: Node) -> bool:
        """Whether ``x`` is on the border path."""
        return x in self._border_index

    def inside_positions(self, x: Node) -> Set[int]:
        """Rotation positions of border node ``x`` pointing inside."""
        return self._inside_positions[x]

    def neighbors_inside(self, x: Node) -> List[Node]:
        """Neighbors of border node ``x`` attached on the inside."""
        t = self.cfg.t(x)
        return [t[p] for p in sorted(self._inside_positions[x])]

    def children_inside(self, x: Node) -> List[Node]:
        """T-children of border node ``x`` whose subtree hangs inside."""
        children = set(self.cfg.tree.children[x])
        return [z for z in self.neighbors_inside(x) if z in children]

    def p_value(self, x: Node) -> int:
        """:math:`p_{F_e}(x)`: nodes of ``x``'s inside child-subtrees.

        This is the quantity Definition 2 calls
        :math:`|F_e \\cap T_x|` restricted to the interior, which endpoint
        ``x`` computes locally from its rotation plus subtree sizes
        (Lemma 12's proof).
        """
        sizes = self.cfg.tree.subtree_size
        return sum(sizes[c] for c in self.children_inside(x))

    def interior(self) -> Set[Node]:
        """:math:`\\mathring{F}_e`: all nodes strictly inside the face.

        Every interior node hangs, in T, below an inside T-child of a border
        node (Claim 3's decomposition), so the interior is a disjoint union
        of full subtrees.
        """
        tree = self.cfg.tree
        out: Set[Node] = set()
        for x in self.border:
            for c in self.children_inside(x):
                out.update(tree.subtree_nodes(c))
        return out

    def face_nodes(self) -> Set[Node]:
        """All of :math:`V(F_e)`: border plus interior."""
        return set(self.border) | self.interior()

    def contains_point(self, x: Node, interior_cache: Set[Node] | None = None) -> bool:
        """Whether node ``x`` lies on :math:`F_e` (border or interior)."""
        if x in self._border_index:
            return True
        interior = interior_cache if interior_cache is not None else self.interior()
        return x in interior

    def contains_edge(self, f: Edge, interior_cache: Set[Node] | None = None) -> bool:
        """Whether fundamental edge ``f`` is drawn inside :math:`F_e`.

        An edge is inside iff each endpoint is inside, where a border
        endpoint additionally needs the edge to leave through an inside
        rotation position (a chord can hug either side of the border).
        """
        a, b = f
        if {a, b} == {self.u, self.v}:
            return False
        interior = interior_cache if interior_cache is not None else self.interior()
        for x, y in ((a, b), (b, a)):
            if x in self._border_index:
                if self.cfg.t_position(x, y) not in self._inside_positions[x]:
                    return False
            elif x not in interior:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaceView(e=({self.u!r},{self.v!r}), border={len(self.border)})"


def face_view(cfg: PlanarConfiguration, e: Edge) -> FaceView:
    """Construct the :class:`FaceView` of a real fundamental edge."""
    u, v = e
    if not cfg.graph.has_edge(u, v):
        raise ValueError(f"{e!r} is not a graph edge")
    if cfg.is_tree_edge(u, v):
        raise ValueError(f"{e!r} is a tree edge, not a fundamental edge")
    return FaceView(cfg, e)
