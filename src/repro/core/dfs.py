"""Deterministic DFS-tree construction — the paper's Theorem 2.

The *main algorithm* (Sections 3.2 / 6.2) grows a partial DFS tree
:math:`T_d` in :math:`O(\\log n)` phases.  Each phase, in parallel over the
connected components of :math:`G - T_d`:

1. computes a cycle separator of the component (Theorem 1 — the machinery
   of :mod:`repro.core.separator`), and
2. joins the separator to :math:`T_d` with the DFS-RULE (the JOIN-PROBLEM,
   Lemma 2): repeatedly hang the path from the component node with the
   deepest :math:`T_d`-neighbor to the farthest still-marked node, halving
   the un-joined part of the separator each iteration.

Because every phase swallows a separator of every component, component
sizes shrink by a factor of at least :math:`2/3` per phase, giving the
:math:`O(\\log n)` phase bound and, with every subroutine at
:math:`\\tilde{O}(D)` rounds, the overall :math:`\\tilde{O}(D)` bound.

The result is verified by the classical characterization (every non-tree
edge joins an ancestor-descendant pair) in :func:`repro.core.verify.
check_dfs_tree`, which the test suite applies to every run.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..planar.checks import require_planar_connected
from ..planar.construct import embed, embed_subgraph
from ..planar.rotation import RotationSystem
from ..trees.rooted import RootedTree
from .config import PlanarConfiguration
from .separator import SeparatorResult, cycle_separator

Node = Hashable

__all__ = ["DFSResult", "dfs_tree", "DFSError"]


class DFSError(RuntimeError):
    """An algorithm invariant failed during DFS construction."""


class DFSResult:
    """Output of the deterministic DFS algorithm.

    Attributes
    ----------
    parent:
        Node -> parent in the DFS tree (root -> ``None``).  This is the
    paper's distributed output: every node knows its parent and depth.
    depth:
        Node -> distance from the root in the DFS tree.
    root:
        The requested root.
    phases:
        Number of main-loop phases executed (Theorem 2: :math:`O(\\log n)`).
    join_iterations:
        Per phase, the maximum number of JOIN halving iterations used by any
        component (Lemma 2: :math:`O(\\log n)` each).
    separator_phases:
        Tally of which separator phase fired, over all components and
        main-loop phases (experiment E4's data).
    shrink_factors:
        Per phase, ``max component size after / max component size before``
        (Theorem 2's 2/3 claim, experiment E10's data).
    """

    __slots__ = (
        "parent",
        "depth",
        "root",
        "phases",
        "join_iterations",
        "separator_phases",
        "shrink_factors",
    )

    def __init__(self, root: Node):
        self.root = root
        self.parent: Dict[Node, Optional[Node]] = {root: None}
        self.depth: Dict[Node, int] = {root: 0}
        self.phases = 0
        self.join_iterations: List[int] = []
        self.separator_phases: Dict[str, int] = {}
        self.shrink_factors: List[float] = []

    def to_tree(self) -> RootedTree:
        """The DFS tree as a :class:`RootedTree`."""
        return RootedTree(self.parent, self.root)


def dfs_tree(
    graph: nx.Graph,
    root: Node,
    rotation: Optional[RotationSystem] = None,
    ledger=None,
) -> DFSResult:
    """Compute a DFS tree of a connected planar graph rooted at ``root``.

    This is Theorem 2's algorithm; the returned structure carries the
    per-phase statistics the experiment harness reports.
    """
    require_planar_connected(graph)
    if root not in graph:
        raise ValueError(f"root {root!r} is not a graph node")
    if rotation is None:
        rotation = embed(graph)
        if ledger is not None:
            ledger.charge_subroutine("planar-embedding")
    result = DFSResult(root)
    in_tree: Set[Node] = {root}
    n = len(graph)
    guard = 0
    while len(in_tree) < n:
        guard += 1
        if guard > 4 * max(n, 2).bit_length() + 8:
            raise DFSError("main loop did not terminate in O(log n) phases")
        result.phases += 1
        if ledger is not None:
            ledger.begin_parallel()
        components = [set(c) for c in nx.connected_components(graph.subgraph(set(graph.nodes) - in_tree))]
        before = max(len(c) for c in components)
        max_join = 0
        for component in components:
            if ledger is not None:
                ledger.begin_branch()
            separator = _component_separator(graph, rotation, component, result, ledger)
            result.separator_phases[separator.phase] = (
                result.separator_phases.get(separator.phase, 0) + 1
            )
            iterations = _join(graph, component, set(separator.path), result, ledger)
            max_join = max(max_join, iterations)
        if ledger is not None:
            ledger.end_parallel()
        in_tree = set(result.parent)
        remaining = set(graph.nodes) - in_tree
        after = 0
        if remaining:
            after = max(len(c) for c in nx.connected_components(graph.subgraph(remaining)))
        result.join_iterations.append(max_join)
        result.shrink_factors.append(after / before if before else 0.0)
    return result


# ----------------------------------------------------------------------
# Step 1: per-component separator
# ----------------------------------------------------------------------
def _component_separator(
    graph: nx.Graph,
    rotation: RotationSystem,
    component: Set[Node],
    result: DFSResult,
    ledger,
) -> SeparatorResult:
    """Theorem 1 applied to one component of :math:`G - T_d`.

    The component's spanning tree is rooted at the node with the deepest
    neighbor in the partial tree — the same root the JOIN step will use.
    """
    subgraph = graph.subgraph(component).copy()
    root = _deepest_attachment(graph, component, result)[0]
    tree = _attachment_spanning_tree(subgraph, root, set())
    cfg = PlanarConfiguration(subgraph, embed_subgraph(rotation, component), tree)
    return cycle_separator(cfg, ledger=ledger)


def _deepest_attachment(
    graph: nx.Graph,
    nodes: Set[Node],
    result: DFSResult,
) -> Tuple[Node, Node]:
    """The component node with the deepest :math:`T_d`-neighbor, plus that
    neighbor (the DFS-RULE's attachment point)."""
    best: Optional[Tuple[int, str, Node, Node]] = None
    for v in nodes:
        for w in graph.neighbors(v):
            if w in result.parent:
                key = (result.depth[w], repr(w), repr(v))
                if best is None or (key[0], key[1]) > (best[0], best[1]):
                    best = (result.depth[w], repr(w), v, w)
    if best is None:
        raise DFSError("component has no attachment to the partial DFS tree")
    return best[2], best[3]


def _attachment_spanning_tree(
    subgraph: nx.Graph,
    root: Node,
    marked: Set[Node],
) -> RootedTree:
    """Spanning tree preferring marked-marked edges (the paper's 0/1-weight
    MST of Lemma 2, which clusters the remaining separator nodes into
    tree paths).  Implemented as a prioritized graph search."""
    parent: Dict[Node, Optional[Node]] = {root: None}
    # Two-tier frontier: weight-0 edges (both endpoints marked) first.
    light: List[Tuple[Node, Node]] = []
    heavy: List[Tuple[Node, Node]] = [(root, u) for u in subgraph.neighbors(root)]
    while light or heavy:
        v, u = light.pop() if light else heavy.pop()
        if u in parent:
            continue
        parent[u] = v
        for w in subgraph.neighbors(u):
            if w in parent:
                continue
            if u in marked and w in marked:
                light.append((u, w))
            else:
                heavy.append((u, w))
    if len(parent) != len(subgraph):
        raise DFSError("component subgraph is not connected")
    return RootedTree(parent, root)


# ----------------------------------------------------------------------
# Step 2: JOIN-PROBLEM (Lemma 2)
# ----------------------------------------------------------------------
def _join(
    graph: nx.Graph,
    component: Set[Node],
    marked: Set[Node],
    result: DFSResult,
    ledger,
) -> int:
    """Add all ``marked`` separator nodes of one component to the partial
    DFS tree with the DFS-RULE; returns the number of halving iterations."""
    pending: List[Tuple[Set[Node], Set[Node]]] = [(component, marked)]
    iterations = 0
    guard = 4 * max(len(component), 2).bit_length() + 8
    while pending:
        iterations += 1
        if iterations > guard:
            raise DFSError("JOIN did not terminate in O(log n) iterations")
        if ledger is not None:
            ledger.charge_subroutine("join-iteration")
        next_pending: List[Tuple[Set[Node], Set[Node]]] = []
        for nodes, todo in pending:
            r, attach = _deepest_attachment(graph, nodes, result)
            tree = _attachment_spanning_tree(graph.subgraph(nodes).copy(), r, todo)
            target = _farthest_marked(tree, todo)
            path = tree.path(r, target)
            # DFS-RULE: hang the path below the attachment point; parents
            # and depths are final from now on.
            base = result.depth[attach]
            previous = attach
            for offset, x in enumerate(path):
                result.parent[x] = previous
                result.depth[x] = base + 1 + offset
                previous = x
            added = set(path)
            rest = nodes - added
            still = todo - added
            if not still:
                continue
            for sub in nx.connected_components(graph.subgraph(rest)):
                sub = set(sub)
                if sub & still:
                    next_pending.append((sub, sub & still))
        pending = next_pending
    return iterations


def _farthest_marked(tree: RootedTree, marked: Set[Node]) -> Node:
    """The marked node the paper's JOIN picks: the farthest (deepest) from
    the top of the marked Steiner tree, so at least half of the deepest
    marked path joins this iteration."""
    return max(marked, key=lambda m: (tree.depth[m], repr(m)))
