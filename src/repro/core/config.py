"""Planar configurations — the paper's triplets :math:`(G, \\mathcal{E}, T)`.

A :class:`PlanarConfiguration` bundles a connected planar graph, a rotation
system, and a rooted spanning tree, **normalized** the way every proof in the
paper assumes:

* the rotation of every non-root node starts with its tree parent
  (the paper's ":math:`t_v(e) = 1` for the parent edge");
* the root's rotation starts at the *anchor* slot — the position where the
  virtual root :math:`r_0` of Section 4 is inserted.  The face of the
  embedding containing that corner at the root plays the role of the outer
  face; fundamental faces are always the side of a cycle *not* containing it.

On top of the normalized rotation the configuration precomputes everything
Definition 2 consumes: the LEFT/RIGHT-DFS-ORDERs :math:`\\pi_\\ell, \\pi_r`,
subtree sizes :math:`n_T(v)`, depths :math:`d_T(v)`, and the per-subtree
position ranges used for O(1) ancestor tests (exactly the information the
distributed DFS-ORDER algorithm of Lemma 11 leaves at the nodes).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..planar.checks import require_planar_connected
from ..planar.construct import embed, embed_subgraph
from ..planar.rotation import RotationSystem
from ..trees.rooted import RootedTree
from ..trees.spanning import bfs_tree

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["PlanarConfiguration", "ConfigurationError"]


class ConfigurationError(ValueError):
    """Raised when (G, E, T) are mutually inconsistent."""


class PlanarConfiguration:
    """A normalized planar configuration :math:`(G, \\mathcal{E}, T)`.

    Parameters
    ----------
    graph:
        Connected planar graph.
    rotation:
        Rotation system of exactly ``graph`` (any anchor; it is re-normalized).
    tree:
        Rooted spanning tree of ``graph``.
    root_anchor:
        Optional neighbor of the root that should sit at rotation position 0;
        the virtual root is inserted just before it.  Defaults to the root's
        first listed neighbor.
    """

    def __init__(
        self,
        graph: nx.Graph,
        rotation: RotationSystem,
        tree: RootedTree,
        root_anchor: Optional[Node] = None,
    ):
        self.graph = graph
        self.tree = tree
        self.n = len(graph)
        self._validate(graph, rotation, tree)
        self.rotation = self._normalize(rotation, tree, root_anchor)
        # DFS orders, 1-based, plus subtree position ranges in both orders.
        self.pi_left: Dict[Node, int] = {}
        self.pi_right: Dict[Node, int] = {}
        self._order_children_left: Dict[Node, List[Node]] = {}
        self._order_children_right: Dict[Node, List[Node]] = {}
        self._compute_orders()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: nx.Graph,
        root: Optional[Node] = None,
        tree: Optional[RootedTree] = None,
        rotation: Optional[RotationSystem] = None,
    ) -> "PlanarConfiguration":
        """Convenience constructor: embed + BFS spanning tree by default."""
        require_planar_connected(graph)
        if root is None:
            root = tree.root if tree is not None else min(graph.nodes, key=repr)
        if rotation is None:
            rotation = embed(graph)
        if tree is None:
            tree = bfs_tree(graph, root)
        return cls(graph, rotation, tree)

    @classmethod
    def for_part(
        cls,
        graph: nx.Graph,
        rotation: RotationSystem,
        part: Sequence[Node],
        tree: RootedTree,
    ) -> "PlanarConfiguration":
        """Configuration of an induced part with the inherited embedding."""
        subgraph = graph.subgraph(part).copy()
        sub_rotation = embed_subgraph(rotation, part)
        return cls(subgraph, sub_rotation, tree)

    @staticmethod
    def _validate(graph: nx.Graph, rotation: RotationSystem, tree: RootedTree) -> None:
        if set(rotation.nodes) != set(graph.nodes):
            raise ConfigurationError("rotation and graph have different node sets")
        if set(tree.nodes) != set(graph.nodes):
            raise ConfigurationError("tree is not spanning")
        for v in graph.nodes:
            if set(rotation.neighbors_cw(v)) != set(graph.neighbors(v)):
                raise ConfigurationError(f"rotation of {v!r} does not match the graph")
        for p, c in tree.edges():
            if not graph.has_edge(p, c):
                raise ConfigurationError(f"tree edge {p!r}-{c!r} is not a graph edge")

    @staticmethod
    def _normalize(
        rotation: RotationSystem,
        tree: RootedTree,
        root_anchor: Optional[Node],
    ) -> RotationSystem:
        order: Dict[Node, List[Node]] = {}
        for v in rotation.nodes:
            nbrs = list(rotation.neighbors_cw(v))
            if not nbrs:
                order[v] = nbrs
                continue
            if v == tree.root:
                first = root_anchor if root_anchor is not None else nbrs[0]
            else:
                first = tree.parent[v]
            if first not in nbrs:
                raise ConfigurationError(
                    f"normalization target {first!r} is not a neighbor of {v!r}"
                )
            i = nbrs.index(first)
            order[v] = nbrs[i:] + nbrs[:i]
        return RotationSystem(order)

    # ------------------------------------------------------------------
    # DFS orders (paper Section 3.1.1)
    # ------------------------------------------------------------------
    def _children_in_rotation(self, v: Node) -> List[Node]:
        """T-children of ``v`` in rotation order (parent/anchor first slot)."""
        children = set(self.tree.children[v])
        return [u for u in self.rotation.neighbors_cw(v) if u in children]

    def _compute_orders(self) -> None:
        tree = self.tree
        for v in tree.nodes:
            in_rot = self._children_in_rotation(v)
            # RIGHT-DFS-ORDER explores children by ascending rotation
            # position (the paper: "smaller position in t_v first");
            # LEFT-DFS-ORDER by descending position.
            self._order_children_right[v] = in_rot
            self._order_children_left[v] = list(reversed(in_rot))
        self._preorder(self._order_children_left, self.pi_left)
        self._preorder(self._order_children_right, self.pi_right)

    def _preorder(self, child_order: Dict[Node, List[Node]], out: Dict[Node, int]) -> None:
        counter = 1
        stack = [self.tree.root]
        while stack:
            v = stack.pop()
            out[v] = counter
            counter += 1
            stack.extend(reversed(child_order[v]))

    # ------------------------------------------------------------------
    # queries used throughout the algorithm
    # ------------------------------------------------------------------
    def left_range(self, v: Node) -> Tuple[int, int]:
        """Closed interval of :math:`\\pi_\\ell` positions of :math:`T_v`."""
        lo = self.pi_left[v]
        return (lo, lo + self.tree.subtree_size[v] - 1)

    def right_range(self, v: Node) -> Tuple[int, int]:
        """Closed interval of :math:`\\pi_r` positions of :math:`T_v`."""
        lo = self.pi_right[v]
        return (lo, lo + self.tree.subtree_size[v] - 1)

    def is_ancestor(self, a: Node, b: Node) -> bool:
        """Ancestor test via order ranges (what the endpoints of a
        fundamental edge do with one exchanged message, Lemma 12)."""
        lo, hi = self.left_range(a)
        return lo <= self.pi_left[b] <= hi

    def t(self, v: Node) -> Tuple[Node, ...]:
        """The normalized rotation :math:`t_v` (parent/anchor first)."""
        return self.rotation.neighbors_cw(v)

    def t_position(self, v: Node, u: Node) -> int:
        """Position of ``u`` in the normalized :math:`t_v` (0 = parent)."""
        return self.rotation.position(v, u)

    def real_fundamental_edges(self) -> List[Edge]:
        """All real fundamental edges, each as ``(u, v)`` with
        :math:`\\pi_\\ell(u) < \\pi_\\ell(v)` (the paper's convention)."""
        out: List[Edge] = []
        tree = self.tree
        for a, b in self.graph.edges():
            if tree.parent.get(a) == b or tree.parent.get(b) == a:
                continue
            if self.pi_left[a] < self.pi_left[b]:
                out.append((a, b))
            else:
                out.append((b, a))
        return out

    def orient(self, e: Edge) -> Edge:
        """Return ``e`` ordered so :math:`\\pi_\\ell(u) < \\pi_\\ell(v)`."""
        u, v = e
        return (u, v) if self.pi_left[u] < self.pi_left[v] else (v, u)

    def is_tree_edge(self, u: Node, v: Node) -> bool:
        """Whether ``uv`` is an edge of the spanning tree."""
        return self.tree.parent.get(u) == v or self.tree.parent.get(v) == u

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanarConfiguration(n={self.n}, m={self.graph.number_of_edges()}, "
            f"root={self.tree.root!r})"
        )
