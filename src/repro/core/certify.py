"""Cycle certification: is a separator path a *cycle* separator?

The paper's definition (Section 1): a cycle separator is a separator set
that forms a cycle in ``G``, or a path whose endpoints can be joined by an
edge without crossing the embedding.  The algorithm's balance guarantees
already rest on such a closing edge existing; this module makes the
certificate a first-class artifact a downstream user can inspect:

* ``"real-edge"`` — the endpoints are adjacent in ``G`` (the path + that
  edge is a cycle of ``G``);
* ``"virtual-edge"`` — a planar insertion of the closing edge exists
  (constructively exhibited on the rotation system);
* ``"root-slit"`` — the path starts at the root and its closing curve runs
  through the virtual root's outer corner (the Lemma 8 / Phase 2 shape:
  cutting the disk from the outer anchor needs no crossing);
* ``"none"`` — no certificate (the set still separates, but the cycle
  property could not be established).
"""

from __future__ import annotations

from typing import Hashable, List, Literal, Sequence

from .augment import insertion_variants
from .config import PlanarConfiguration

Node = Hashable
Certificate = Literal["real-edge", "virtual-edge", "root-slit", "trivial", "none"]

__all__ = ["certify_cycle"]


def certify_cycle(cfg: PlanarConfiguration, path: Sequence[Node]) -> Certificate:
    """Certify the cycle property of a separator path.

    Parameters
    ----------
    cfg:
        The configuration the separator was computed on.
    path:
        The separator nodes in T-path order (as emitted by
        :func:`repro.core.separator.cycle_separator`).
    """
    if len(path) <= 2:
        return "trivial"
    a, b = path[0], path[-1]
    if cfg.graph.has_edge(a, b):
        return "real-edge"
    for _cfg2, _view in insertion_variants(cfg, a, b):
        return "virtual-edge"
    if cfg.tree.root in (a, b):
        return "root-slit"
    return "none"
