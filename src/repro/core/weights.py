"""Deterministic face weights — the paper's Definition 2, made exact.

This module is the paper's central technical device: a *deterministic
formula* for the number of nodes a fundamental face encloses, computable by
the edge endpoints from DFS-order positions, subtree sizes, depths and the
locally-visible rotation (Lemma 12).  Three families of quantities live
here:

* :func:`weight` — Definition 2 for real fundamental faces.  Calibrated so
  that Lemmas 3 and 4 hold *exactly* (experiment E7):

  - ``u`` not an ancestor of ``v``:  the weight equals
    :math:`|\\tilde{F}_e| = |\\mathring{F}_e| + |path(w..v)|`;
  - ``u`` an ancestor of ``v``:  the weight equals
    :math:`|\\mathring{F}_e|`.

* :func:`augmented_weight` — the weights of the *full augmentation from
  u* (Section 3.1.3): the virtual faces :math:`F^\\ell_{uz}` for nodes
  ``z`` inside :math:`F_e`, used by Phase 4 of the separator algorithm.

* :func:`side_sets` — the outside partition :math:`F^e_\\ell, F^e_r` of
  Lemma 8, used by Phase 5.

Normalization notes (recorded as paper errata in DESIGN.md): positions are
1-based preorders; :math:`n_T(v)` includes ``v``; consequently the interval
of :math:`T_u` is :math:`[\\pi(u), \\pi(u)+n_T(u)-1]` and the case-1 constant
is ``+2`` where the paper prints ``+1``.  The paper's clockwise convention is
mirrored relative to this library's rotation systems, which swaps the
inequality in Definition 1 (``E``-left vs ``E``-right); everything here is
self-consistent and verified against the region oracle.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Literal, Set, Tuple

from .config import PlanarConfiguration
from .faces import FaceView

Node = Hashable
Edge = Tuple[Node, Node]
Orientation = Literal["left", "right", "none"]

__all__ = [
    "orientation",
    "weight",
    "face_order",
    "augmented_weight",
    "side_sets",
    "interior_by_orders",
]


def orientation(cfg: PlanarConfiguration, e: Edge) -> Orientation:
    """Definition 1 orientation of a fundamental edge ``e = uv``.

    Returns ``"none"`` when neither endpoint is an ancestor of the other;
    otherwise ``"left"``/``"right"``.  In this library's rotation convention
    the edge is left-oriented when ``t_u(v) > t_u(z)`` for the first path
    node ``z`` (mirrored from the paper's statement; see module docstring).
    """
    u, v = cfg.orient(e)
    if not cfg.tree.is_ancestor(u, v):
        return "none"
    z = cfg.tree.first_step(u, v)
    return "left" if cfg.t_position(u, v) > cfg.t_position(u, z) else "right"


def face_order(cfg: PlanarConfiguration, e: Edge) -> Dict[Node, int]:
    """The DFS order a face's weights sweep by: :math:`\\pi_r` for
    right-oriented edges, :math:`\\pi_\\ell` otherwise (paper Sub-phase 4.1)."""
    return cfg.pi_right if orientation(cfg, e) == "right" else cfg.pi_left


def weight(cfg: PlanarConfiguration, fv: FaceView) -> int:
    """Definition 2: the weight :math:`\\omega(F_e)` of a real fundamental
    face, computed from order positions, depths, subtree sizes and the
    locally-derived :math:`p`-values — never from the interior itself."""
    u, v = fv.u, fv.v
    tree = cfg.tree
    p_u, p_v = fv.p_value(u), fv.p_value(v)
    if not tree.is_ancestor(u, v):
        return (
            p_v
            + p_u
            + cfg.pi_left[v]
            - (cfg.pi_left[u] + tree.subtree_size[u])
            + 2
        )
    z = tree.first_step(u, v)
    pi = face_order(cfg, (u, v))
    return p_v + p_u + (pi[v] - pi[z]) - (tree.depth[v] - tree.depth[z])


def augmented_weight(
    cfg: PlanarConfiguration,
    fv: FaceView,
    z: Node,
    p_u: int | None = None,
) -> int:
    """Weight :math:`\\omega(F^\\ell_{uz})` of the full augmentation from
    ``u`` to a node ``z`` inside :math:`F_e` (Section 3.1.3 / Phase 4).

    The virtual edge ``uz`` is never physically inserted by the algorithm —
    only this weight is needed.  For a :math:`(T, F_e)`-compatible ``z`` the
    value equals the exact node count of the insertable face (calibrated
    against physical insertion + the region oracle); for hidden ``z`` it is
    the paper's notational extension, used only as a search value.
    """
    u = fv.u
    tree = cfg.tree
    if p_u is None:
        p_u = fv.p_value(u)
    size_z = tree.subtree_size[z]
    if tree.is_strict_ancestor(u, z):
        z1 = tree.first_step(u, z)
        pi = face_order(cfg, fv.edge)
        return (size_z - 1) + (pi[z] - pi[z1]) - (tree.depth[z] - tree.depth[z1])
    return (
        p_u
        + (size_z - 1)
        + cfg.pi_left[z]
        - (cfg.pi_left[u] + tree.subtree_size[u])
        + 2
    )


def side_sets(
    cfg: PlanarConfiguration,
    fv: FaceView,
    interior: Set[Node] | None = None,
) -> Tuple[Set[Node], Set[Node]]:
    """The outside split :math:`(F^e_\\ell, F^e_r)` of Lemma 8 (Phase 5).

    :math:`F^e_\\ell` holds the outside nodes with left position below
    :math:`\\pi_\\ell(u)` plus the outside part of :math:`T_u`;
    :math:`F^e_r` the outside nodes with left position above
    :math:`\\pi_\\ell(v)`.  The paper computes the two sizes locally at the
    endpoints; this implementation materializes the sets (same values,
    recorded as a deviation in DESIGN.md) because Phase 5's virtual-face
    reduction also needs the membership.
    """
    u, v = fv.u, fv.v
    if interior is None:
        interior = fv.interior()
    face_nodes = interior | set(fv.border)
    pi = cfg.pi_left
    left: Set[Node] = set()
    right: Set[Node] = set()
    u_lo, u_hi = cfg.left_range(u)
    for x in cfg.graph.nodes:
        if x in face_nodes:
            continue
        if pi[x] < pi[u] or u_lo <= pi[x] <= u_hi:
            left.add(x)
        elif pi[x] > pi[v]:
            right.add(x)
        else:
            # Outside nodes between the endpoints in left order: hanging off
            # the border on the outside.  Lemma 8 folds them into the left
            # set (they are separated from F_r by the border path as well).
            left.add(x)
    return left, right


def interior_by_orders(cfg: PlanarConfiguration, fv: FaceView) -> Set[Node]:
    """Remark 1 membership: reconstruct :math:`\\mathring{F}_e` from order
    positions plus endpoint-local child classification only.

    This is what DETECT-FACE-PROBLEM (Lemma 15) computes distributively:
    the interval test handles nodes outside :math:`T_u \\cup T_v`, the
    endpoints broadcast the position ranges of their inside children.  Used
    by experiment E7 to confirm the characterization against the first-
    principles interior.
    """
    u, v = fv.u, fv.v
    tree = cfg.tree
    border = set(fv.border)
    inside: Set[Node] = set()
    for x in (u, v):
        for c in fv.children_inside(x):
            lo, hi = cfg.left_range(c)
            inside.update(
                y for y in tree.subtree_nodes(c) if lo <= cfg.pi_left[y] <= hi
            )
    if not tree.is_ancestor(u, v):
        lo = cfg.pi_left[u] + tree.subtree_size[u]
        hi = cfg.pi_left[v] - 1
        u_lo, u_hi = cfg.left_range(u)
        v_lo, v_hi = cfg.left_range(v)
        for y in cfg.graph.nodes:
            if y in border or u_lo <= cfg.pi_left[y] <= u_hi or v_lo <= cfg.pi_left[y] <= v_hi:
                continue
            if lo <= cfg.pi_left[y] <= hi:
                inside.add(y)
    else:
        z = tree.first_step(u, v)
        pi = face_order(cfg, (u, v))
        lo, hi = pi[z], pi[v] - 1
        v_lo, v_hi = cfg.left_range(v)
        for y in tree.subtree_nodes(z):
            if y in border or v_lo <= cfg.pi_left[y] <= v_hi:
                continue
            if lo <= pi[y] <= hi:
                inside.add(y)
    return inside
