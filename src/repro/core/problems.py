"""The paper's boxed problem statements as a problem-by-problem API.

Section 5 defines the separator machinery as a stack of named CONGEST
problems — DFS-ORDER-PROBLEM, WEIGHTS-PROBLEM, MARK-PATH-PROBLEM,
LCA-PROBLEM, DETECT-FACE-PROBLEM, HIDDEN-PROBLEM, NOT-CONTAINED-PROBLEM,
NOT-CONTAINS-PROBLEM (Section 5.2), SEPARATOR-PROBLEM (Section 5.3),
RE-ROOT-PROBLEM and JOIN-PROBLEM (Section 6.1).  This module exposes each
with the paper's exact input/output contract, in the multi-part form the
paper states them (a partition :math:`\\mathcal{P}`, everything solved in
parallel per part, rounds charged per part-block to the ledger).

These are thin, documented veneers over the core machinery — the value is
the one-to-one correspondence with the paper, which the test suite and any
downstream reader can navigate lemma by lemma.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..planar.construct import embed, embed_subgraph
from ..planar.rotation import RotationSystem
from ..trees.rooted import RootedTree
from ..trees.spanning import boruvka_part_spanning_trees
from .config import PlanarConfiguration
from .faces import face_view
from .hidden import hiding_edges
from .separator import (
    SeparatorResult,
    _containment_maximal,
    _containment_minimal,
    compute_cycle_separators,
)
from .subroutines import dfs_order_phases, lca_problem as _lca, mark_path_phases
from .weights import weight

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = [
    "PartContext",
    "part_contexts",
    "dfs_order_problem",
    "weights_problem",
    "mark_path_problem",
    "lca_problem",
    "detect_face_problem",
    "hidden_problem",
    "not_contained_problem",
    "not_contains_problem",
    "separator_problem",
    "re_root_problem",
]


class PartContext:
    """One part's slice of the paper's standing input.

    The boxed problems all share the same preamble: a planar configuration
    :math:`(G, \\mathcal{E}, T)`, a partition of :math:`V`, and a spanning
    tree :math:`T_i` of each induced subgraph.  A :class:`PartContext` is
    that preamble for one part (graph, inherited embedding, tree — already
    normalized into a :class:`PlanarConfiguration`).
    """

    __slots__ = ("index", "nodes", "cfg")

    def __init__(self, index: int, nodes: Sequence[Node], cfg: PlanarConfiguration):
        self.index = index
        self.nodes = list(nodes)
        self.cfg = cfg


def part_contexts(
    graph: nx.Graph,
    parts: Sequence[Sequence[Node]],
    rotation: Optional[RotationSystem] = None,
    trees: Optional[Dict[int, RootedTree]] = None,
    ledger=None,
) -> List[PartContext]:
    """Materialize the standing input: embedding + per-part spanning trees.

    The embedding costs one Proposition-1 charge; the trees one Lemma-9
    (per-part Borůvka) charge.
    """
    if rotation is None:
        rotation = embed(graph)
        if ledger is not None:
            ledger.charge_subroutine("planar-embedding")
    if trees is None:
        trees = boruvka_part_spanning_trees(graph, parts).trees
        if ledger is not None:
            ledger.charge_subroutine("part-spanning-trees")
    out = []
    for i, part in enumerate(parts):
        subgraph = graph.subgraph(part).copy()
        cfg = PlanarConfiguration(subgraph, embed_subgraph(rotation, part), trees[i])
        out.append(PartContext(i, part, cfg))
    return out


def dfs_order_problem(
    contexts: Sequence[PartContext], ledger=None
) -> Dict[int, Tuple[Dict[Node, int], Dict[Node, int]]]:
    """DFS-ORDER-PROBLEM (Lemma 11): every node learns π_ℓ and π_r.

    Returns part index -> (pi_left, pi_right).  Computed with the
    fragment-merging dynamics, so the charged rounds reflect the
    O(log n) phase structure rather than the tree depth.
    """
    out = {}
    for ctx in contexts:
        run = dfs_order_phases(ctx.cfg, ledger=ledger)
        out[ctx.index] = (run.pi_left, run.pi_right)
    return out


def weights_problem(
    contexts: Sequence[PartContext], ledger=None
) -> Dict[int, Dict[Edge, int]]:
    """WEIGHTS-PROBLEM (Lemma 12): the endpoints of every real fundamental
    edge learn the Definition-2 weight of its face."""
    out: Dict[int, Dict[Edge, int]] = {}
    for ctx in contexts:
        cfg = ctx.cfg
        if ledger is not None:
            ledger.charge_subroutine("weights")
        out[ctx.index] = {
            e: weight(cfg, face_view(cfg, e)) for e in cfg.real_fundamental_edges()
        }
    return out


def mark_path_problem(
    contexts: Sequence[PartContext],
    endpoints: Dict[int, Tuple[Node, Node]],
    ledger=None,
) -> Dict[int, List[Node]]:
    """MARK-PATH-PROBLEM (Lemma 13): per part, every node of the
    :math:`T_i`-path between the two designated nodes is marked."""
    out = {}
    for ctx in contexts:
        if ctx.index not in endpoints:
            continue
        u, v = endpoints[ctx.index]
        out[ctx.index] = mark_path_phases(ctx.cfg, u, v, ledger=ledger).marked
    return out


def lca_problem(
    contexts: Sequence[PartContext],
    endpoints: Dict[int, Tuple[Node, Node]],
    ledger=None,
) -> Dict[int, Node]:
    """LCA-PROBLEM (Lemma 14): per part, the LCA of the designated nodes is
    identified."""
    out = {}
    for ctx in contexts:
        if ctx.index not in endpoints:
            continue
        u, v = endpoints[ctx.index]
        out[ctx.index] = _lca(ctx.cfg, u, v, ledger=ledger)
    return out


def detect_face_problem(
    contexts: Sequence[PartContext],
    edges: Dict[int, Edge],
    ledger=None,
) -> Dict[int, Set[Node]]:
    """DETECT-FACE-PROBLEM (Lemma 15): per part, every node learns whether
    it lies on :math:`F_e` (border or interior) for the designated edge."""
    out = {}
    for ctx in contexts:
        if ctx.index not in edges:
            continue
        if ledger is not None:
            ledger.charge_subroutine("detect-face")
        fv = face_view(ctx.cfg, edges[ctx.index])
        out[ctx.index] = fv.face_nodes()
    return out


def hidden_problem(
    contexts: Sequence[PartContext],
    queries: Dict[int, Tuple[Edge, Node]],
    ledger=None,
) -> Dict[int, List[Edge]]:
    """HIDDEN-PROBLEM (Lemma 16): per part, all real fundamental edges
    hiding the designated leaf inside the designated face."""
    out = {}
    for ctx in contexts:
        if ctx.index not in queries:
            continue
        if ledger is not None:
            ledger.charge_subroutine("hidden-problem")
        e, z = queries[ctx.index]
        fv = face_view(ctx.cfg, e)
        out[ctx.index] = [f for f, _ in hiding_edges(ctx.cfg, fv, z)]
    return out


def not_contained_problem(
    contexts: Sequence[PartContext],
    candidate_edges: Dict[int, Sequence[Edge]],
    ledger=None,
) -> Dict[int, Edge]:
    """NOT-CONTAINED-PROBLEM (Lemma 17): per part, a candidate edge whose
    face is contained in no other candidate's face."""
    out = {}
    for ctx in contexts:
        if ctx.index not in candidate_edges:
            continue
        if ledger is not None:
            ledger.charge_subroutine("not-contained")
        cfg = ctx.cfg
        views = {e: face_view(cfg, e) for e in candidate_edges[ctx.index]}
        out[ctx.index] = _containment_maximal(cfg, views, list(views))
    return out


def not_contains_problem(
    contexts: Sequence[PartContext],
    candidate_edges: Dict[int, Sequence[Edge]],
    ledger=None,
) -> Dict[int, Edge]:
    """NOT-CONTAINS-PROBLEM (Lemma 18): per part, a candidate edge whose
    face contains no other candidate's face."""
    out = {}
    for ctx in contexts:
        if ctx.index not in candidate_edges:
            continue
        if ledger is not None:
            ledger.charge_subroutine("not-contains")
        cfg = ctx.cfg
        views = {e: face_view(cfg, e) for e in candidate_edges[ctx.index]}
        out[ctx.index] = _containment_minimal(cfg, views, list(views))
    return out


def separator_problem(
    graph: nx.Graph,
    parts: Sequence[Sequence[Node]],
    ledger=None,
) -> Dict[int, SeparatorResult]:
    """SEPARATOR-PROBLEM (Section 5.3 / Theorem 1): a marked cycle
    separator per part.  Alias of :func:`repro.core.separator.
    compute_cycle_separators` under the paper's problem name."""
    return compute_cycle_separators(graph, parts, ledger=ledger)


def re_root_problem(
    contexts: Sequence[PartContext],
    new_roots: Dict[int, Node],
    ledger=None,
) -> Dict[int, RootedTree]:
    """RE-ROOT-PROBLEM (Lemma 19): per part, the spanning tree re-rooted at
    the designated node (same edges; parents and depths updated)."""
    out = {}
    for ctx in contexts:
        if ctx.index not in new_roots:
            continue
        if ledger is not None:
            ledger.charge_subroutine("re-root")
        out[ctx.index] = ctx.cfg.tree.reroot(new_roots[ctx.index])
    return out
