"""The paper's contribution: cycle separators (Thm 1) and DFS trees (Thm 2)."""

from .augment import AugmentationError, balanced_insertion, heavy_nested_insertion, insertion_variants
from .config import ConfigurationError, PlanarConfiguration
from .dfs import DFSError, DFSResult, dfs_tree
from .faces import FaceView, face_view
from .hidden import hiding_edges, is_hidden
from .regions import CycleRegions, RegionError, cycle_regions
from .separator import (
    SeparatorError,
    SeparatorResult,
    compute_cycle_separators,
    cycle_separator,
)
from .verify import (
    SeparatorReport,
    VerificationError,
    check_dfs_tree,
    check_partial_dfs,
    check_separator,
    separator_report,
)
from .weights import (
    augmented_weight,
    face_order,
    interior_by_orders,
    orientation,
    side_sets,
    weight,
)

__all__ = [
    "AugmentationError",
    "ConfigurationError",
    "CycleRegions",
    "DFSError",
    "DFSResult",
    "FaceView",
    "PlanarConfiguration",
    "RegionError",
    "SeparatorError",
    "SeparatorReport",
    "SeparatorResult",
    "VerificationError",
    "augmented_weight",
    "balanced_insertion",
    "check_dfs_tree",
    "check_partial_dfs",
    "check_separator",
    "compute_cycle_separators",
    "cycle_regions",
    "cycle_separator",
    "dfs_tree",
    "face_order",
    "face_view",
    "heavy_nested_insertion",
    "hiding_edges",
    "insertion_variants",
    "interior_by_orders",
    "is_hidden",
    "orientation",
    "separator_report",
    "side_sets",
    "weight",
]
