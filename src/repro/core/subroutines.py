"""Operational versions of the paper's Section 5.2 subroutines.

The algorithms of Lemmas 11, 13, 14 and 19 solve problems that are trivial
in :math:`O(depth)` rounds but must finish in :math:`\\tilde{O}(D)` even on
:math:`\\Theta(n)`-deep spanning trees.  Their common engine is *fragment
merging*: maintain a partition of the tree into rooted fragments whose
depths halve every phase, so :math:`O(\\log n)` phases suffice.

This module implements those dynamics operationally — the phase structure
is simulated faithfully and counted (experiment E8 plots phases against
:math:`\\log n` on path-deep trees), while each phase's message work is
charged to the ledger at one part-wise-aggregation round cost.

* :func:`dfs_order_phases` — Lemma 11: LEFT/RIGHT-DFS-ORDER by merging
  subtree fragments bottom-up, offsetting each joining fragment's local
  numbering by the paper's :math:`\\pi(z) + 1 + \\sum_{y<x} n_T(v_y)` rule.
* :func:`mark_path_phases` — Lemma 13: mark the u-v path by recursive
  segment splitting (each phase finds the middle edges of all active
  segments through one fragment-merge sweep).
* :func:`lca_problem` — Lemma 14: the LCA via order positions + a MAX
  aggregation over both root paths.
* :func:`re_root` — Lemma 19: re-rooting the distributed tree
  representation with ancestor/descendant case analysis.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..trees.rooted import RootedTree
from .config import PlanarConfiguration

Node = Hashable

__all__ = [
    "dfs_order_phases",
    "mark_path_phases",
    "lca_problem",
    "re_root",
    "DFSOrderRun",
    "MarkPathRun",
]


class DFSOrderRun:
    """Result of the fragment-merging DFS-ORDER computation.

    Attributes
    ----------
    pi_left / pi_right:
        The computed orders (1-based).
    phases:
        Number of merge phases executed — Lemma 11 proves
        :math:`O(\\log n)`, independent of tree depth.
    """

    __slots__ = ("pi_left", "pi_right", "phases")

    def __init__(self, pi_left: Dict[Node, int], pi_right: Dict[Node, int], phases: int):
        self.pi_left = pi_left
        self.pi_right = pi_right
        self.phases = phases


def _merge_order(cfg: PlanarConfiguration, child_order: Dict[Node, List[Node]]) -> Tuple[Dict[Node, int], int]:
    """One fragment-merging preorder computation (the Lemma 11 engine).

    ``child_order[v]`` lists v's T-children in the order the target preorder
    visits them.  Every node starts as its own fragment knowing only its
    local position (1); each phase, fragments whose root sits at odd
    *fragment depth* join their parent's fragment, and the joining root
    learns its offset from its T-parent locally: the parent's position plus
    one plus the subtree sizes of the siblings visited earlier.
    """
    tree = cfg.tree
    sizes = tree.subtree_size
    # Precompute each node's offset below its parent; this is the quantity
    # the parent transmits in one message when the fragments merge.
    offset_below_parent: Dict[Node, int] = {}
    for v in tree.nodes:
        acc = 1
        for c in child_order[v]:
            offset_below_parent[c] = acc
            acc += sizes[c]

    position: Dict[Node, int] = {v: 1 for v in tree.nodes}  # local positions
    fragment_root: Dict[Node, Node] = {v: v for v in tree.nodes}
    members: Dict[Node, List[Node]] = {v: [v] for v in tree.nodes}
    phases = 0
    while len(members) > 1:
        phases += 1
        scale = 1 << (phases - 1)
        joining = [
            r
            for r in members
            if r != tree.root and (tree.depth[r] // scale) % 2 == 1
        ]
        # Joining roots whose parent fragment is itself joining chain up;
        # process top-down by depth so offsets compose in one phase, the
        # way the paper pipelines the broadcasts.
        for r in sorted(joining, key=lambda r: tree.depth[r]):
            parent = tree.parent[r]
            assert parent is not None
            target = fragment_root[parent]
            # The joining root's global position is its parent's plus its
            # offset; members shift by that minus their local base of 1.
            delta = position[parent] + offset_below_parent[r] - 1
            for v in members[r]:
                position[v] += delta
                fragment_root[v] = target
            members[target].extend(members[r])
            del members[r]
    return position, phases


def dfs_order_phases(cfg: PlanarConfiguration, ledger=None) -> DFSOrderRun:
    """Compute both DFS orders with the Lemma 11 fragment dynamics.

    The result provably equals :attr:`PlanarConfiguration.pi_left` /
    ``pi_right`` (asserted by the test suite); what this adds is the *phase
    count*, which stays logarithmic even when the tree is a path.
    """
    left, phases_l = _merge_order(cfg, cfg._order_children_left)
    right, phases_r = _merge_order(cfg, cfg._order_children_right)
    phases = max(phases_l, phases_r)
    if ledger is not None:
        ledger.charge_subroutine("partwise-aggregation", 2 * phases)
    return DFSOrderRun(left, right, phases)


class MarkPathRun:
    """Result of the MARK-PATH computation.

    Attributes
    ----------
    marked:
        The nodes of the u-v path, in path order.
    phases:
        Recursive splitting phases (``O(log path length)``).
    iterations:
        Total fragment-merge iterations across all phases
        (``O(log^2 n)`` — the paper's Lemma 13 budget).
    """

    __slots__ = ("marked", "phases", "iterations")

    def __init__(self, marked: List[Node], phases: int, iterations: int):
        self.marked = marked
        self.phases = phases
        self.iterations = iterations


def mark_path_phases(
    cfg: PlanarConfiguration,
    u: Node,
    v: Node,
    ledger=None,
) -> MarkPathRun:
    """Mark the T-path between ``u`` and ``v`` by recursive halving
    (Lemma 13).

    Each phase runs one fragment-merge sweep (``ceil(log2 n)`` iterations)
    that locates the middle edge of every active segment in parallel; the
    segments halve, so ``O(log n)`` phases mark the whole path without any
    node ever walking it sequentially.
    """
    tree = cfg.tree
    full_path = tree.path(u, v)
    marked: Set[Node] = {u, v}
    segments: List[Tuple[int, int]] = [(0, len(full_path) - 1)]
    phases = 0
    iterations = 0
    per_sweep = max(1, math.ceil(math.log2(max(cfg.n, 2))))
    while segments:
        phases += 1
        iterations += per_sweep
        if ledger is not None:
            ledger.charge_subroutine("partwise-aggregation", per_sweep)
        next_segments: List[Tuple[int, int]] = []
        for lo, hi in segments:
            mid = (lo + hi) // 2
            marked.add(full_path[mid])
            next_segments.extend([(lo, mid), (mid, hi)])
        segments = [s for s in next_segments if s[1] - s[0] > 1]
    assert marked == set(full_path)
    return MarkPathRun(full_path, phases, iterations)


def lca_problem(cfg: PlanarConfiguration, u: Node, v: Node, ledger=None) -> Node:
    """Lemma 14: the LCA via root-path membership + a MAX aggregation.

    A node knows it lies on the root path of ``u`` (resp. ``v``) from the
    order-range test; the LCA is the deepest node on both.  Asserted equal
    to the direct tree LCA by the test suite.
    """
    if ledger is not None:
        ledger.charge_subroutine("lca")
    tree = cfg.tree
    best: Optional[Tuple[int, Node]] = None
    for x in tree.nodes:
        if cfg.is_ancestor(x, u) and cfg.is_ancestor(x, v):
            key = (tree.depth[x], x)
            if best is None or key[0] > best[0]:
                best = (tree.depth[x], x)
    assert best is not None
    return best[1]


def re_root(cfg_tree: RootedTree, new_root: Node, ledger=None) -> RootedTree:
    """Lemma 19: re-root the distributed representation.

    Ancestors of the new root flip their parent pointer to the unique child
    towards it; everyone updates depths from the broadcast original depth
    of ``new_root`` — exactly the paper's three-case update, realized by
    :meth:`RootedTree.reroot`.
    """
    if ledger is not None:
        ledger.charge_subroutine("re-root")
    return cfg_tree.reroot(new_root)
