"""Physically inserting virtual fundamental edges (face augmentations).

The distributed algorithm searches with the paper's deterministic weight
*formulas* (:func:`repro.core.weights.augmented_weight`), but certifies its
output constructively: a separator path between ``a`` and ``b`` is emitted
only when the virtual edge ``ab`` has an actual planar insertion — an
:math:`\\mathcal{E}`-compatible edge in the paper's terms — whose face
splits the part into two light sides (Lemma 5's Jordan argument).

This module enumerates all rotation slots for such an insertion, preferring
the slots Section 3.1.3's augmentation recipe names (adjacent to the parent
edge at the inner endpoint; adjacent to the fundamental edge at the face
endpoint; adjacent to the virtual-root gap at the root), and validates every
attempt with the Euler planarity check plus the face-interior computation.

A calibration finding recorded in DESIGN.md: for *virtual* faces the paper's
sweep formulas are predictions, not exact counts — which subtrees hang on
the face side at intermediate path nodes is fixed by the embedding, not by
the insertion.  The constructive acceptance below is therefore deliberately
semantic (is the real face balanced / heavy?), never formula-equality.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Set, Tuple

from ..planar.rotation import EmbeddingError
from .config import PlanarConfiguration
from .faces import FaceView, face_view

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = [
    "insertion_variants",
    "balanced_insertion",
    "heavy_nested_insertion",
    "AugmentationError",
]


class AugmentationError(ValueError):
    """No valid planar insertion exists for the requested virtual edge."""


def _candidate_refs(cfg: PlanarConfiguration, x: Node, anchor_edge: Optional[Node]) -> List[Optional[Node]]:
    """Insertion references at node ``x``, preferred slots first.

    ``anchor_edge`` names the neighbor whose two adjacent slots the paper's
    augmentation recipe prefers; ``None`` prefers the rotation start/end (the
    parent slot / the root gap).  All remaining slots follow — compatibility
    is decided by the caller's semantic checks, and the compatible route may
    pass through any face incident to ``x``.
    """
    t = cfg.t(x)
    if not t:
        return [None]
    if anchor_edge is None:
        preferred: List[Optional[Node]] = [None, t[-1]]
    else:
        pos = cfg.t_position(x, anchor_edge)
        preferred = [anchor_edge, t[pos - 1] if pos > 0 else None]
    rest: List[Optional[Node]] = [y for y in t if y not in preferred]
    if None not in preferred:
        rest.append(None)
    return preferred + rest


def _build_variants(
    cfg: PlanarConfiguration,
    a: Node,
    b: Node,
    ref_a: Optional[Node],
    ref_b: Optional[Node],
) -> List[PlanarConfiguration]:
    """One slot pair -> every viable extended configuration.

    When the insertion touches the root's rotation start, the virtual-root
    gap splits; both sub-corner (anchor) designations are produced so the
    caller can pick the side its checks accept.
    """
    rotation = cfg.rotation.copy()
    try:
        rotation.insert_edge(a, b, after_u=ref_a, after_v=ref_b)
        rotation.validate()
    except EmbeddingError:
        return []
    graph = cfg.graph.copy()
    graph.add_edge(a, b)
    root = cfg.tree.root
    anchors = [cfg.t(root)[0]]
    if root in (a, b):
        anchors.append(b if root == a else a)
    out: List[PlanarConfiguration] = []
    for anchor in anchors:
        try:
            out.append(PlanarConfiguration(graph, rotation, cfg.tree, root_anchor=anchor))
        except Exception:  # pragma: no cover - anchor not a neighbor
            continue
    return out


def insertion_variants(
    cfg: PlanarConfiguration,
    a: Node,
    b: Node,
    prefer_a: Optional[Node] = None,
    prefer_b: Optional[Node] = None,
) -> Iterator[Tuple[PlanarConfiguration, FaceView]]:
    """All planar insertions of the virtual edge ``ab``, lazily.

    Yields ``(extended configuration, view of the new fundamental face)``.
    An empty iteration means ``a`` and ``b`` are not
    :math:`\\mathcal{E}`-compatible (no common face).
    """
    if a == b or cfg.graph.has_edge(a, b):
        raise AugmentationError(f"{a!r}-{b!r} is not a virtual edge")
    for ref_a in _candidate_refs(cfg, a, prefer_a):
        for ref_b in _candidate_refs(cfg, b, prefer_b):
            for cfg2 in _build_variants(cfg, a, b, ref_a, ref_b):
                yield cfg2, face_view(cfg2, (a, b))


def balanced_insertion(
    cfg: PlanarConfiguration,
    a: Node,
    b: Node,
    n: int,
    prefer_a: Optional[Node] = None,
    prefer_b: Optional[Node] = None,
) -> Optional[int]:
    """Certify that the T-path ``a..b`` is a cycle separator.

    Looks for a planar insertion of ``ab`` whose face has both Jordan sides
    of size at most ``2n/3``: the inside is the face interior, the outside
    is everything else minus the border path.  Returns the witnessing
    interior size, or ``None`` when no insertion certifies balance.
    """
    path_len = cfg.tree.path_length(a, b) + 1
    for _, view in insertion_variants(cfg, a, b, prefer_a, prefer_b):
        inside = len(view.interior())
        outside = n - inside - path_len
        if 3 * inside <= 2 * n and 3 * outside <= 2 * n:
            return inside
    return None


def heavy_nested_insertion(
    cfg: PlanarConfiguration,
    fv: FaceView,
    z: Node,
    n: int,
    interior: Optional[Set[Node]] = None,
) -> Optional[Tuple[PlanarConfiguration, FaceView]]:
    """Insert ``u z`` so the new face is heavy but strictly inside
    :math:`F_e` — the containment-descent step of Lemma 7's proof.

    Returns the extended configuration (where ``uz`` is now a *real*
    fundamental edge with interior > 2n/3, strictly fewer interior nodes
    than :math:`F_e`) or ``None``.
    """
    if interior is None:
        interior = fv.interior()
    face_nodes = interior | set(fv.border)
    for cfg2, view in insertion_variants(cfg, fv.u, z, prefer_a=fv.v, prefer_b=None):
        new_interior = view.interior()
        if not new_interior <= face_nodes:
            continue
        if len(new_interior) >= len(interior):
            continue
        if 3 * len(new_interior) <= 2 * n:
            continue
        return cfg2, view
    return None
