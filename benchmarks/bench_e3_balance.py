"""E3 — Lemma 5/1: separator balance is a hard 2/3 guarantee.

Regenerates the per-family worst-case component-fraction table.  Shape:
`worst_fraction <= 2/3` on every row — not on average, on every instance.
"""

from _common import run_and_emit
from repro.core.config import PlanarConfiguration
from repro.core.separator import cycle_separator
from repro.planar import generators as gen


def test_e3_balance(benchmark):
    rows = run_and_emit("e3", "e3_balance.txt",
                        "E3 - separator balance per family (hard 2/3 bound)")
    for row in rows:
        assert row["holds"], row

    g = gen.triangulated_grid(8, 8)
    cfg = PlanarConfiguration.build(g, root=0)
    benchmark(lambda: cycle_separator(cfg))


if __name__ == "__main__":
    run_and_emit("e3", "e3_balance.txt",
                 "E3 - separator balance per family (hard 2/3 bound)")
