"""E7 — Lemmas 3/4 + Remark 1 + Lemma 8: the deterministic formulas are exact.

Regenerates the mismatch-count table over every real fundamental face of
the workload suite.  Shape: zero mismatches in every row — the paper's
weight formula is exact, not an approximation (this is its whole point
versus the randomized estimates of Ghaffari–Parter).
"""

from _common import run_and_emit
from repro.core.config import PlanarConfiguration
from repro.core.faces import face_view
from repro.core.weights import weight
from repro.planar import generators as gen


def test_e7_exactness(benchmark):
    rows = run_and_emit("e7", "e7_exactness.txt",
                        "E7 - exactness of the deterministic formulas")
    for row in rows:
        assert row["mismatches"] == 0, row
        assert row["faces"] > 1000

    g = gen.delaunay(200, seed=1)
    cfg = PlanarConfiguration.build(g, root=0)
    edges = cfg.real_fundamental_edges()

    def all_weights():
        return [weight(cfg, face_view(cfg, e)) for e in edges]

    benchmark(all_weights)


if __name__ == "__main__":
    run_and_emit("e7", "e7_exactness.txt",
                 "E7 - exactness of the deterministic formulas")
