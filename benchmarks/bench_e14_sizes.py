"""E14 — separator sizes: cycle separators vs the Lipton-Tarjan baseline.

Regenerates the size comparison table.  Shape: on triangulation-like
families both algorithms stay in the fundamental-cycle regime (<= 2r + 1);
cycle separators may exceed sqrt(n) on sparse families — the structural
trade-off the paper makes deliberately (the DFS-RULE needs paths, not small
sets).
"""

from _common import run_and_emit
from repro.baselines import lipton_tarjan_separator
from repro.planar import generators as gen


def test_e14_sizes(benchmark):
    rows = run_and_emit("e14", "e14_separator_sizes.txt",
                        "E14 - separator sizes vs baselines")
    for row in rows:
        assert row["lipton_tarjan"] <= row["2r+1"], row
        assert row["ours"] >= 1

    g = gen.delaunay(300, seed=0)
    benchmark(lambda: lipton_tarjan_separator(g))


if __name__ == "__main__":
    run_and_emit("e14", "e14_separator_sizes.txt",
                 "E14 - separator sizes vs baselines")
