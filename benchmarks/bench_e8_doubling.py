"""E8 — Lemmas 11/13: fragment merging beats tree depth.

Regenerates the phase-count table of the DFS-ORDER and MARK-PATH fragment
dynamics on Θ(n)-deep trees.  Shape: phases ~ log2 n even when the tree
depth is n - 1 (paths) — the whole reason the paper needs these
subroutines instead of walking the tree.
"""

from _common import emit
from repro.analysis import experiments
from repro.core.config import PlanarConfiguration
from repro.core.subroutines import dfs_order_phases
from repro.planar import generators as gen


def test_e8_doubling(benchmark):
    rows = experiments.e8_doubling()
    emit("e8_doubling.txt", rows, "E8 - fragment-merge phases vs log n (Lemmas 11/13)")
    for row in rows:
        assert row["order_phases"] <= row["log2n"] + 1, row
        assert row["markpath_phases"] <= row["log2n"] + 1, row

    cfg = PlanarConfiguration.build(gen.path_graph(2048), root=0)
    benchmark(lambda: dfs_order_phases(cfg))


if __name__ == "__main__":
    emit("e8_doubling.txt", experiments.e8_doubling(),
         "E8 - fragment-merge phases vs log n (Lemmas 11/13)")
