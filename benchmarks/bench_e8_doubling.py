"""E8 — Lemmas 11/13: fragment merging beats tree depth.

Regenerates the phase-count table of the DFS-ORDER and MARK-PATH fragment
dynamics on Θ(n)-deep trees.  Shape: phases ~ log2 n even when the tree
depth is n - 1 (paths) — the whole reason the paper needs these
subroutines instead of walking the tree.
"""

from _common import emit, run_and_emit
from repro.congest import RoundTrace, fragment_merge_run
from repro.core.config import PlanarConfiguration
from repro.core.subroutines import dfs_order_phases
from repro.planar import generators as gen
from repro.trees import bfs_tree


def fragment_trace_rows(sizes=(128, 512)):
    """The merge dynamic under RoundTrace: one trace spans every flood pass
    (one Network.run per iteration), and the active set tracks the joining
    fragments rather than the whole graph."""
    rows = []
    for n in sizes:
        g = gen.path_graph(n)
        trace = RoundTrace()
        run = fragment_merge_run(g, bfs_tree(g, 0), trace=trace)
        s = trace.summary()
        rows.append(
            {
                "n": n,
                "iterations": run.iterations,
                "rounds": run.rounds,
                "flood_passes": s["runs"],
                "messages": s["messages"],
                "peak_active": s["peak_active"],
                "mean_active": round(s["mean_active"], 2),
            }
        )
        assert s["runs"] == run.iterations  # one flood pass per merge
        assert s["max_words"] <= 2          # (new_id, old_id)
    return rows


def test_e8_doubling(benchmark):
    rows = run_and_emit("e8", "e8_doubling.txt",
                        "E8 - fragment-merge phases vs log n (Lemmas 11/13)")
    emit("e8_fragment_trace.txt", fragment_trace_rows(),
         "E8 - fragment merging under RoundTrace (per-pass message profile)")
    for row in rows:
        assert row["order_phases"] <= row["log2n"] + 1, row
        assert row["markpath_phases"] <= row["log2n"] + 1, row

    cfg = PlanarConfiguration.build(gen.path_graph(2048), root=0)
    benchmark(lambda: dfs_order_phases(cfg))


if __name__ == "__main__":
    run_and_emit("e8", "e8_doubling.txt",
                 "E8 - fragment-merge phases vs log n (Lemmas 11/13)")
    emit("e8_fragment_trace.txt", fragment_trace_rows(),
         "E8 - fragment merging under RoundTrace (per-pass message profile)")
