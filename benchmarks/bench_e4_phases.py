"""E4 — §5.3 phase analysis: which phase emits the separator.

Regenerates the phase histogram across the full workload suite (plus the
Phase-2 centroid-fallback tally from DESIGN.md's erratum).  Shape: Phases
2 and 3 dominate; Phases 4/5 fire on the adversarial tree/embedding
combinations; every run is accounted for.
"""

from _common import run_and_emit
from repro.analysis import experiments


def test_e4_phases(benchmark):
    rows = run_and_emit("e4", "e4_phases.txt", "E4 - separator phase histogram")
    benchmark(lambda: experiments.e4_phases(seeds=range(2)))
    phases = {r["phase"]: r for r in rows}
    assert "phase2" in phases and "phase3" in phases
    total = sum(r["count"] for r in rows if not r["phase"].startswith("rule:"))
    assert total > 0
    covered = sum(r["fraction"] for r in rows if not r["phase"].startswith("rule:"))
    assert abs(covered - 1.0) < 1e-9


if __name__ == "__main__":
    run_and_emit("e4", "e4_phases.txt", "E4 - separator phase histogram")
