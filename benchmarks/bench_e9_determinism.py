"""E9 — deterministic vs sampled weights (the Ghaffari–Parter gap).

Regenerates the failure-rate table of the sampled-weight separator across
sample budgets, against the deterministic algorithm's zero failure rate.
Shape: the failure rate decays as the budget grows and never reaches the
deterministic row's 0 at small budgets — the statistical price the paper's
Definition 2 eliminates.
"""

from _common import run_and_emit
from repro.baselines import randomized_separator
from repro.planar import generators as gen

BUDGETS = (2, 5, 10, 25, 75, 200)


def test_e9_determinism(benchmark):
    rows = run_and_emit("e9", "e9_determinism.txt",
                        "E9 - sampled-weight failure rate vs budget", budgets=BUDGETS)
    det = [r for r in rows if r["algorithm"].startswith("deterministic")]
    assert det and det[0]["failure_rate"] == 0.0
    sampled = [r for r in rows if not r["algorithm"].startswith("deterministic")]
    assert sampled[0]["failure_rate"] >= sampled[-1]["failure_rate"]
    assert sampled[0]["failure_rate"] > 0.0

    g = gen.delaunay(90, seed=2)
    benchmark(lambda: randomized_separator(g, samples=25, seed=0))


if __name__ == "__main__":
    run_and_emit("e9", "e9_determinism.txt",
                 "E9 - sampled-weight failure rate vs budget", budgets=BUDGETS)
