"""Shared helpers for the benchmark harness.

Every ``bench_e*.py`` regenerates one experiment of DESIGN.md §4: it runs
the experiment rows, asserts the claim's *shape*, writes the table to
``benchmarks/results/``, and times a representative unit with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

or execute any module directly (``python benchmarks/bench_e1_separator_rounds.py``)
to print its table without timing.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List

from repro.analysis import render_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

__all__ = ["RESULTS_DIR", "emit"]


def emit(name: str, rows: List[Dict], title: str) -> str:
    """Render, persist and print one experiment table."""
    table = render_table(rows, title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(table)
    print()
    print(table)
    return table
