"""Shared helpers for the benchmark harness.

Every ``bench_e*.py`` regenerates one experiment of DESIGN.md §4 through
the unified runner (:mod:`repro.analysis.runner`): :func:`run_and_emit`
executes the experiment (serially, with the on-disk cache under
``benchmarks/.cache/``), persists the provenance-stamped ``.txt`` table
*and* the versioned ``e<N>.json`` artifact under ``benchmarks/results/``,
prints the table and returns the rows for the bench's shape assertions.
Run with::

    pytest benchmarks/ --benchmark-only

or execute any module directly (``python benchmarks/bench_e1_separator_rounds.py``)
to print its table without timing.  The artifact schema, cache semantics
and regression contract are documented in ``docs/BENCHMARKS.md``; the
parallel path is ``python -m repro experiment all --parallel N``.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List

from repro.analysis import render_table, runner
from repro.analysis.cache import InstanceCache

BENCH_ROOT = pathlib.Path(__file__).parent
RESULTS_DIR = BENCH_ROOT / "results"
CACHE_DIR = BENCH_ROOT / ".cache"

__all__ = ["RESULTS_DIR", "CACHE_DIR", "emit", "run_and_emit"]


def emit(name: str, rows: List[Dict], title: str) -> str:
    """Render, stamp, persist and print one table (for the extra
    trace/micro tables that are not registered experiments)."""
    text = runner.write_table(RESULTS_DIR / name, rows, title)
    print()
    print(text)
    return text


def run_and_emit(key: str, name: str, title: str, **overrides) -> List[Dict]:
    """Run one registered experiment through the runner and persist every
    output: the ``.txt`` table under ``name`` plus the ``e<N>.json``
    artifact.  Parameter ``overrides`` go to the experiment's registered
    signature (e.g. ``sizes=...``).  Returns the rows."""
    runs = runner.run_experiments(
        [key],
        overrides={key: overrides} if overrides else None,
        cache=InstanceCache(CACHE_DIR),
    )
    runner.write_artifacts(runs, RESULTS_DIR, json_only=True)
    run = runs[key]
    text = runner.write_table(RESULTS_DIR / name, run.rows, title)
    print()
    print(text)
    return run.rows
