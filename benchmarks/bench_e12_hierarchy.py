"""E12 — separator hierarchies: O(log n) divide-and-conquer depth.

Regenerates the hierarchy-depth table (the introduction's application of
separators).  Shape: depth stays at or below log_{3/2}(n) + O(1) across
families while n grows 9x, and the elimination order is a permutation of
the nodes (asserted inside the runner).
"""

from _common import run_and_emit
from repro.applications import build_hierarchy
from repro.planar import generators as gen


def test_e12_hierarchy(benchmark):
    rows = run_and_emit("e12", "e12_hierarchy.txt",
                        "E12 - separator hierarchy depth vs log n")
    for row in rows:
        assert row["depth"] <= row["log_1.5(n)"] + 4, row

    g = gen.delaunay(225, seed=0)
    benchmark(lambda: build_hierarchy(g))


if __name__ == "__main__":
    run_and_emit("e12", "e12_hierarchy.txt",
                 "E12 - separator hierarchy depth vs log n")
