"""E13 — the ledger charge upper-bounds measured message-level rounds.

Regenerates the cross-layer table: one part-wise aggregation run on the
real simulator (pipelined upcast over tree-restricted shortcuts) versus the
c + d the ledger charges for it.  Shape: measured <= charged on every row —
the guarantee that makes E1/E2's charged round counts trustworthy.
"""

from _common import run_and_emit
from repro.congest import partwise_aggregation_run
from repro.planar import generators as gen


def test_e13_charge_honesty(benchmark):
    rows = run_and_emit("e13", "e13_charge_honesty.txt",
                        "E13 - measured PA rounds vs ledger charge")
    for row in rows:
        assert row["measured_rounds"] <= row["charged_c+d"], row

    g = gen.grid(8, 8)
    nodes = sorted(g.nodes)
    parts = [nodes[i: i + 16] for i in range(0, 64, 16)]
    values = {v: 1 for v in g.nodes}
    benchmark(lambda: partwise_aggregation_run(g, parts, values))


if __name__ == "__main__":
    run_and_emit("e13", "e13_charge_honesty.txt",
                 "E13 - measured PA rounds vs ledger charge")
