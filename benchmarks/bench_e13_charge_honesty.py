"""E13 — the ledger charge upper-bounds measured message-level rounds.

Regenerates the cross-layer table: one part-wise aggregation run on the
real simulator (pipelined upcast over tree-restricted shortcuts) versus the
c + d the ledger charges for it.  Shape: measured <= charged on every row —
the guarantee that makes E1/E2's charged round counts trustworthy.
"""

from _common import emit
from repro.analysis import experiments
from repro.congest import partwise_aggregation_run
from repro.planar import generators as gen


def test_e13_charge_honesty(benchmark):
    rows = experiments.e13_charge_honesty()
    emit("e13_charge_honesty.txt", rows, "E13 - measured PA rounds vs ledger charge")
    for row in rows:
        assert row["measured_rounds"] <= row["charged_c+d"], row

    g = gen.grid(8, 8)
    nodes = sorted(g.nodes)
    parts = [nodes[i: i + 16] for i in range(0, 64, 16)]
    values = {v: 1 for v in g.nodes}
    benchmark(lambda: partwise_aggregation_run(g, parts, values))


if __name__ == "__main__":
    emit("e13_charge_honesty.txt", experiments.e13_charge_honesty(),
         "E13 - measured PA rounds vs ledger charge")
