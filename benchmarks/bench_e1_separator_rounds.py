"""E1 — Theorem 1: cycle-separator round complexity is Õ(D).

Regenerates the scaling table: charged CONGEST rounds of the deterministic
separator across graph families and sizes, normalized by D·log²n.  The
claim's shape: the normalized column stays bounded as n grows (no n- or
n^0.5-type growth beyond the diameter's own).
"""

import networkx as nx

from _common import emit, run_and_emit
from repro.congest import RoundTrace, bfs_run
from repro.core.config import PlanarConfiguration
from repro.core.separator import cycle_separator
from repro.planar import generators as gen

SIZES = (100, 225, 400, 900, 1600)


def bfs_trace_rows(sizes=(100, 400, 1600, 100_000)):
    """The message-level anchor of the charged layer under RoundTrace: the
    BFS-tree construction every separator instance starts from.  Active-set
    dispatch keeps the per-round work at the frontier, and the word
    histogram confirms single-word frontier messages.

    The 10^5 tier runs on the columnar vectorized scheduler (PR 6) — the
    message-level grid's reach past n ~ 10^3 is exactly what the fast path
    buys; the traced counts are scheduler-invariant (the A/B harness in
    ``tests/test_exhaustive_small.py`` locks fingerprint equality)."""
    rows = []
    for n in sizes:
        scheduler = "vectorized" if n >= 10_000 else "active"
        g = gen.delaunay(n, seed=0)
        trace = RoundTrace()
        res = bfs_run(g, 0, trace=trace, scheduler=scheduler)
        s = trace.summary()
        rows.append(
            {
                "n": n,
                "scheduler": scheduler,
                "rounds": res.rounds,
                "messages": res.messages_sent,
                "peak_active": s["peak_active"],
                "mean_active": round(s["mean_active"], 2),
                "max_words": s["max_words"],
            }
        )
        assert s["max_words"] == 1  # a frontier message is one word
        assert s["dropped"] == 0
    return rows


def test_e1_separator_rounds(benchmark):
    rows = run_and_emit("e1", "e1_separator_rounds.txt",
                        "E1 - separator charged rounds vs n (Thm 1)", sizes=SIZES)
    emit("e1_bfs_trace.txt", bfs_trace_rows(),
         "E1 - BFS-tree construction under RoundTrace (frontier active sets)")
    by_family = {}
    for row in rows:
        by_family.setdefault(row["family"], []).append(row)
    for family, series in by_family.items():
        series.sort(key=lambda r: r["n"])
        # Shape: normalized rounds do not blow up with n (allow 3x drift of
        # the smallest instance's constant).
        base = max(series[0]["rounds/(D*log2n^2)"], 1e-9)
        assert series[-1]["rounds/(D*log2n^2)"] <= 4 * base + 8, family

    g = gen.delaunay(400, seed=0)
    cfg = PlanarConfiguration.build(g, root=0)
    benchmark(lambda: cycle_separator(cfg))


if __name__ == "__main__":
    run_and_emit("e1", "e1_separator_rounds.txt",
                 "E1 - separator charged rounds vs n (Thm 1)", sizes=SIZES)
    emit("e1_bfs_trace.txt", bfs_trace_rows(),
         "E1 - BFS-tree construction under RoundTrace (frontier active sets)")
