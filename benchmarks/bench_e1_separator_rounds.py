"""E1 — Theorem 1: cycle-separator round complexity is Õ(D).

Regenerates the scaling table: charged CONGEST rounds of the deterministic
separator across graph families and sizes, normalized by D·log²n.  The
claim's shape: the normalized column stays bounded as n grows (no n- or
n^0.5-type growth beyond the diameter's own).
"""

import networkx as nx

from _common import emit
from repro.analysis import experiments
from repro.core.config import PlanarConfiguration
from repro.core.separator import cycle_separator
from repro.planar import generators as gen

SIZES = (100, 225, 400, 900, 1600)


def test_e1_separator_rounds(benchmark):
    rows = experiments.e1_separator_rounds(sizes=SIZES)
    emit("e1_separator_rounds.txt", rows, "E1 - separator charged rounds vs n (Thm 1)")
    by_family = {}
    for row in rows:
        by_family.setdefault(row["family"], []).append(row)
    for family, series in by_family.items():
        series.sort(key=lambda r: r["n"])
        # Shape: normalized rounds do not blow up with n (allow 3x drift of
        # the smallest instance's constant).
        base = max(series[0]["rounds/(D*log2n^2)"], 1e-9)
        assert series[-1]["rounds/(D*log2n^2)"] <= 4 * base + 8, family

    g = gen.delaunay(400, seed=0)
    cfg = PlanarConfiguration.build(g, root=0)
    benchmark(lambda: cycle_separator(cfg))


if __name__ == "__main__":
    emit("e1_separator_rounds.txt", experiments.e1_separator_rounds(sizes=SIZES),
         "E1 - separator charged rounds vs n (Thm 1)")
