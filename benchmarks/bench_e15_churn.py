"""E15 — churn: incremental separator/DFS repair vs full recompute.

Regenerates the rounds-per-update comparison across update-batch sizes
{1, 8, 64} on the mid-size triangulated grid (``repro.dynamic``).  Shape:
at batch size 1 the incremental engine must beat recomputing from
scratch after every update; at large batch sizes the recompute amortizes
its cost over the whole batch and wins — the table records where the
crossover sits.  Both modes replay the *same* seeded edge-flap sequence
and are held to identical post-update state fingerprints by the dynamic
test suite, so the rounds columns compare equal work.
"""

from _common import run_and_emit
from repro.dynamic import DynamicPipeline
from repro.planar import generators as gen

_TITLE = "E15 - churn: incremental repair vs full recompute"


def _check_shape(rows):
    by_batch = {row["batch"]: row for row in rows}
    assert set(by_batch) == {1, 8, 64}, sorted(by_batch)
    # The headline claim: per-update repair beats per-update recompute.
    assert by_batch[1]["speedup"] > 1.0, by_batch[1]
    for row in rows:
        assert row["incremental_rounds"] > 0 and row["recompute_rounds"] > 0, row
        assert row["updates"] > 0, row


def test_e15_churn(benchmark):
    rows = run_and_emit("e15", "churn_speedup.txt", _TITLE)
    _check_shape(rows)

    g = gen.triangulated_grid(9, 9)
    benchmark(lambda: DynamicPipeline(g, charge_rounds=False))


if __name__ == "__main__":
    rows = run_and_emit("e15", "churn_speedup.txt", _TITLE)
    _check_shape(rows)
