"""E11 — ablation: the proof-gap repairs are load-bearing.

Regenerates the failure-rate table with each DESIGN.md §3 repair disabled.
Shape: the shipped configuration never fails; removing Phase 3b and the
verify-and-fallback emission reintroduces the unbalanced outputs on the
degenerate spanning-tree instances (grid DFS snakes, wheels with random
trees) that the errata describe.
"""

from _common import run_and_emit
from repro.core.config import PlanarConfiguration
from repro.core.separator import cycle_separator
from repro.planar import generators as gen
from repro.trees import dfs_spanning_tree


def test_e11_ablation(benchmark):
    rows = run_and_emit("e11", "e11_ablation.txt",
                        "E11 - ablation of the reproduction's repairs")
    by = {r["variant"]: r for r in rows}
    assert by["full (as shipped)"]["failure_rate"] == 0.0
    assert by["paper-as-stated"]["failure_rate"] > 0.0
    assert by["paper-as-stated"]["failure_rate"] >= by["no-emit-check"]["failure_rate"]

    g = gen.grid(8, 8)
    cfg = PlanarConfiguration.build(g, root=1, tree=dfs_spanning_tree(g, 1))
    benchmark(lambda: cycle_separator(cfg))


if __name__ == "__main__":
    run_and_emit("e11", "e11_ablation.txt",
                 "E11 - ablation of the reproduction's repairs")
