"""E6 — Prop. 2 / GH'16: tree-restricted shortcut quality on planar parts.

Regenerates the measured (congestion, dilation) table for partitioned
planar instances.  Shape: c + d stays within a small multiple of the
D·log D planar bound that the charged cost model is built on.
"""

from _common import run_and_emit
from repro.planar import generators as gen
from repro.shortcuts import build_shortcuts


def test_e6_shortcuts(benchmark):
    rows = run_and_emit("e6", "e6_shortcuts.txt",
                        "E6 - measured shortcut quality vs D log D")
    for row in rows:
        assert row["ratio"] <= 8, row

    g = gen.grid(12, 12)
    parts = [list(range(i, i + 36)) for i in range(0, 144, 36)]
    benchmark(lambda: build_shortcuts(g, parts))


if __name__ == "__main__":
    run_and_emit("e6", "e6_shortcuts.txt",
                 "E6 - measured shortcut quality vs D log D")
