"""E5 — Lemma 2: JOIN's halving terminates in O(log n) iterations.

Regenerates the join-iteration table from end-to-end DFS runs.  Shape: the
maximum number of halving iterations in any phase stays at or below
ceil(log2 n) + O(1) while n quadruples.
"""

from _common import emit
from repro.analysis import experiments
from repro.core.dfs import dfs_tree
from repro.planar import generators as gen


def test_e5_join(benchmark):
    rows = experiments.e5_join()
    emit("e5_join.txt", rows, "E5 - JOIN halving iterations (Lemma 2)")
    for row in rows:
        assert row["max_join_iterations"] <= row["log2n"] + 2, row

    g = gen.delaunay(225, seed=0)
    benchmark(lambda: dfs_tree(g, 0))


if __name__ == "__main__":
    emit("e5_join.txt", experiments.e5_join(), "E5 - JOIN halving iterations (Lemma 2)")
