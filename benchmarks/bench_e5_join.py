"""E5 — Lemma 2: JOIN's halving terminates in O(log n) iterations.

Regenerates the join-iteration table from end-to-end DFS runs.  Shape: the
maximum number of halving iterations in any phase stays at or below
ceil(log2 n) + O(1) while n quadruples.
"""

from _common import run_and_emit
from repro.core.dfs import dfs_tree
from repro.planar import generators as gen


def test_e5_join(benchmark):
    rows = run_and_emit("e5", "e5_join.txt", "E5 - JOIN halving iterations (Lemma 2)")
    for row in rows:
        assert row["max_join_iterations"] <= row["log2n"] + 2, row

    g = gen.delaunay(225, seed=0)
    benchmark(lambda: dfs_tree(g, 0))


if __name__ == "__main__":
    run_and_emit("e5", "e5_join.txt", "E5 - JOIN halving iterations (Lemma 2)")
