"""Micro-benchmarks of the core operations (library performance suite).

Not tied to a paper claim — this is the operational profile a downstream
user cares about: how long the embedding, configuration, weight sweep,
separator and DFS take at a representative size.  Regressions here flag
accidental quadratic behaviour in the face machinery.

Also home of the CONGEST scheduler A/B, in two tiers: the active-set
dispatch vs the legacy dense (every node, every round) dispatch on a
sparse-activity workload — a single-source BFS wavefront on a long path,
where at any moment only the frontier plus a small quiet-countdown window
has work — and, at the 10^5-node tier, the columnar vectorized dispatch
vs the active-set scheduler on a square-grid wavefront (see
docs/BENCHMARKS.md for the tier's runtime budget).
"""

import time

import networkx as nx

from _common import emit
from repro.applications import biconnectivity
from repro.congest import Network, RoundTrace
from repro.obs import Tracer
from repro.core.config import PlanarConfiguration
from repro.core.dfs import dfs_tree
from repro.core.faces import face_view
from repro.core.separator import cycle_separator
from repro.core.subroutines import dfs_order_phases
from repro.core.weights import weight
from repro.planar import embed
from repro.planar import generators as gen
from repro.trees import bfs_tree

N = 600
GRAPH = gen.delaunay(N, seed=7)
ROTATION = embed(GRAPH)
CONFIG = PlanarConfiguration.build(GRAPH, root=0)
EDGES = CONFIG.real_fundamental_edges()

# -- CONGEST scheduler A/B -------------------------------------------------

WAVE_N = 50_000       # path length: the ISSUE's sparse-activity workload
WAVE_ROUNDS = 60      # capped so the dense dispatch finishes in bench time


def _wavefront_program(slack: int = 4):
    """BFS wavefront (the bfs_run program, inlined for scheduler control)."""

    def init(ctx):
        ctx.state["dist"] = 0 if ctx.node == 0 else None
        ctx.state["parent"] = None
        ctx.state["announced"] = False
        ctx.state["quiet"] = 0

    def on_round(ctx, inbox):
        for sender, payload in inbox.items():
            dist = payload[0]
            if ctx.state["dist"] is None or dist + 1 < ctx.state["dist"]:
                ctx.state["dist"] = dist + 1
                ctx.state["parent"] = sender
                ctx.state["announced"] = False
        if ctx.state["dist"] is not None and not ctx.state["announced"]:
            ctx.state["announced"] = True
            ctx.state["quiet"] = 0
            ctx.wake()
            return {u: (ctx.state["dist"],) for u in ctx.neighbors}
        ctx.state["quiet"] += 1
        if ctx.state["dist"] is not None:
            if ctx.state["quiet"] >= slack:
                ctx.halt((ctx.state["dist"], ctx.state["parent"]))
            else:
                ctx.wake()
        return None

    return init, on_round


def _run_wavefront(net: Network, scheduler: str):
    init, on_round = _wavefront_program()
    return net.run(init, on_round, max_rounds=WAVE_ROUNDS, scheduler=scheduler)


def scheduler_speedup_rows(n: int = WAVE_N):
    """Time both dispatch strategies on the same wavefront; assert parity."""
    net = Network(gen.path_graph(n))
    rows = []
    elapsed = {}
    results = {}
    for scheduler in ("dense", "active"):
        t0 = time.perf_counter()
        results[scheduler] = _run_wavefront(net, scheduler)
        elapsed[scheduler] = time.perf_counter() - t0
    for scheduler in ("dense", "active"):
        res = results[scheduler]
        rows.append(
            {
                "scheduler": scheduler,
                "workload": f"path-{n}",
                "n": n,
                "rounds": res.rounds,
                "messages": res.messages_sent,
                "seconds": round(elapsed[scheduler], 4),
                "speedup": round(elapsed["dense"] / elapsed[scheduler], 2),
            }
        )
    assert results["dense"].rounds == results["active"].rounds
    assert results["dense"].messages_sent == results["active"].messages_sent
    return rows


# The 10^5-node tier.  A *square* grid, not a path: the vectorized
# dispatch amortizes numpy's per-operation overhead over the wavefront
# width, and a path's frontier is a single node — the worst case for the
# columnar path and not the regime the tier is meant to measure.  On the
# 316x316 grid the BFS frontier is an ~300-node anti-diagonal band.
VEC_SIDE = 316  # 316 * 316 = 99 856 nodes


def vectorized_speedup_rows(side: int = VEC_SIDE):
    """Active-set vs columnar vectorized dispatch on the ~10^5-node grid.

    Both runs execute to completion (every node halts) on a prebuilt
    :class:`Network`; the vectorized warm-up run builds the cached CSR
    columns so the timed runs compare dispatch strategies, not setup.
    The dense dispatch is excluded at this tier — it is ~n/frontier
    slower and would dominate the bench budget for no information.
    """
    from repro.congest.algorithms import _bfs_kernel_factory

    graph = gen.grid(side, side)
    net = Network(graph)
    n = len(graph)
    max_rounds = 4 * side + 16

    def run(scheduler):
        init, on_round = _wavefront_program()
        on_round.vector_kernel = _bfs_kernel_factory(0, 4)
        t0 = time.perf_counter()
        res = net.run(init, on_round, max_rounds=max_rounds, scheduler=scheduler)
        return res, time.perf_counter() - t0

    run("vectorized")  # warm-up: builds the columnar adjacency cache
    results = {}
    elapsed = {}
    for scheduler in ("active", "vectorized"):
        results[scheduler], elapsed[scheduler] = run(scheduler)
    assert results["active"].rounds == results["vectorized"].rounds
    assert results["active"].messages_sent == results["vectorized"].messages_sent
    assert results["active"].stop_reason == "halted"
    assert results["vectorized"].stop_reason == "halted"
    assert results["vectorized"].fast_path
    rows = []
    for scheduler in ("active", "vectorized"):
        res = results[scheduler]
        rows.append(
            {
                "scheduler": scheduler,
                "workload": f"grid-{side}x{side}",
                "n": n,
                "rounds": res.rounds,
                "messages": res.messages_sent,
                "seconds": round(elapsed[scheduler], 4),
                "speedup": round(elapsed["active"] / elapsed[scheduler], 2),
            }
        )
    return rows


SHARD_WORKERS = 3


def sharded_speedup_rows(side: int = VEC_SIDE, shards: int = SHARD_WORKERS):
    """Sharded worker processes vs the single-process active scheduler on
    the same ~10^5-node grid wavefront.

    The gate here is **determinism, not speed** (docs/BENCHMARKS.md):
    round and message counts must match the single-process run exactly.
    A synchronous wavefront is communication-bound — every round is an
    IPC barrier — so this row documents the coordination cost honestly;
    sharding pays off for handler-heavy programs and instances one
    process cannot hold, not for this microbench.

    The shard partition is a precomputed contiguous band split.  At this
    scale the automatic separator decomposition dominates everything (two
    cycle-separator calls on a 10^5-node grid), which would benchmark the
    partitioner, not the engine; the separator path is exercised at
    realistic sizes by tests/test_sharded.py and the ``sharded_dfs`` chaos
    scenario, and any caller can amortize it the same way via
    ``shard_partition=``.
    """
    from repro.congest.sharded import _fork_context

    graph = gen.grid(side, side)
    net = Network(graph)
    n = len(graph)
    max_rounds = 4 * side + 16
    mode = "process" if _fork_context() is not None else "inline"
    nodes = sorted(graph.nodes)
    chunk = (n + shards - 1) // shards
    bands = [nodes[i * chunk:(i + 1) * chunk] for i in range(shards)]

    def run(**kw):
        init, on_round = _wavefront_program()
        t0 = time.perf_counter()
        res = net.run(init, on_round, max_rounds=max_rounds,
                      scheduler="active", **kw)
        return res, time.perf_counter() - t0

    single, t_single = run()
    sharded, t_sharded = run(shards=shards, shard_mode=mode,
                             shard_partition=bands)
    assert sharded.rounds == single.rounds
    assert sharded.messages_sent == single.messages_sent
    assert sharded.stop_reason == single.stop_reason == "halted"
    assert sharded.shards == shards
    return [
        {
            "scheduler": f"sharded-{mode}-x{shards}",
            "workload": f"grid-{side}x{side}",
            "n": n,
            "rounds": sharded.rounds,
            "messages": sharded.messages_sent,
            "seconds": round(t_sharded, 4),
            "speedup": round(t_single / t_sharded, 2),
        }
    ]


_SPEEDUP_TITLE = (
    f"Scheduler A/B - BFS wavefront: dense vs active on a {WAVE_N}-node "
    f"path; active vs vectorized, and single-process vs separator-sharded "
    f"({SHARD_WORKERS} workers), on a {VEC_SIDE}x{VEC_SIDE} grid"
)
_speedup_rows_cache = None


def all_speedup_rows():
    """All A/B tiers, measured once per process (the tests and the
    ``__main__`` table share the same measurement)."""
    global _speedup_rows_cache
    if _speedup_rows_cache is None:
        _speedup_rows_cache = (
            scheduler_speedup_rows()
            + vectorized_speedup_rows()
            + sharded_speedup_rows()
        )
    return _speedup_rows_cache


def test_micro_embedding(benchmark):
    benchmark(lambda: embed(GRAPH))


def test_micro_configuration(benchmark):
    tree = bfs_tree(GRAPH, 0)
    benchmark(lambda: PlanarConfiguration(GRAPH, ROTATION, tree))


def test_micro_weight_sweep(benchmark):
    def sweep():
        return [weight(CONFIG, face_view(CONFIG, e)) for e in EDGES]

    result = benchmark(sweep)
    assert len(result) == len(EDGES)


def test_micro_largest_interior(benchmark):
    views = [face_view(CONFIG, e) for e in EDGES[:50]]

    def interiors():
        return max(len(v.interior()) for v in views)

    benchmark(interiors)


def test_micro_separator(benchmark):
    benchmark(lambda: cycle_separator(CONFIG))


def test_micro_dfs(benchmark):
    small = gen.delaunay(250, seed=7)
    benchmark(lambda: dfs_tree(small, 0))


def test_micro_dfs_order_phases(benchmark):
    benchmark(lambda: dfs_order_phases(CONFIG))


def test_micro_biconnectivity(benchmark):
    small = gen.random_planar(250, density=0.5, seed=7)
    benchmark(lambda: biconnectivity(small))


def test_micro_scheduler_speedup(benchmark):
    """Acceptance gate: the active-set scheduler must beat the dense
    dispatch by >= 2x on the sparse-activity wavefront; the measured ratio
    is recorded in benchmarks/results/scheduler_speedup.txt."""
    rows = all_speedup_rows()
    emit("scheduler_speedup.txt", rows, _SPEEDUP_TITLE)
    active = next(r for r in rows if r["scheduler"] == "active"
                  and r["workload"].startswith("path"))
    assert active["speedup"] >= 2.0, rows

    net = Network(gen.path_graph(5000))
    benchmark(lambda: _run_wavefront(net, "active"))


def test_micro_vectorized_speedup(benchmark):
    """Acceptance gate (PR 6): the columnar vectorized dispatch must beat
    the active-set scheduler by >= 5x on the 10^5-node grid BFS wavefront,
    with identical round and message counts."""
    rows = all_speedup_rows()
    emit("scheduler_speedup.txt", rows, _SPEEDUP_TITLE)
    vec = next(r for r in rows if r["scheduler"] == "vectorized")
    assert vec["speedup"] >= 5.0, rows

    from repro.congest.algorithms import _bfs_kernel_factory

    net = Network(gen.grid(72, 72))

    def vec_run():
        init, on_round = _wavefront_program()
        on_round.vector_kernel = _bfs_kernel_factory(0, 4)
        return net.run(init, on_round, max_rounds=400, scheduler="vectorized")

    vec_run()  # warm the columnar cache before timing
    benchmark(vec_run)


def test_micro_sharded_parity(benchmark):
    """Acceptance gate (PR 7): the separator-sharded engine must produce
    identical round and message counts to the single-process scheduler on
    the 10^5-node grid wavefront (asserted inside sharded_speedup_rows);
    the measured coordination cost is recorded alongside the scheduler
    rows in benchmarks/results/scheduler_speedup.txt."""
    rows = all_speedup_rows()
    emit("scheduler_speedup.txt", rows, _SPEEDUP_TITLE)
    assert any(r["scheduler"].startswith("sharded") for r in rows)

    from repro.congest.algorithms import bfs_run

    small = gen.grid(24, 24)

    def sharded_run():
        return bfs_run(small, 0, shards=2, shard_mode="inline")

    benchmark(sharded_run)


def tracing_overhead_rows(n: int = WAVE_N):
    """Time the wavefront bare, under RoundTrace, and under RoundTrace
    plus an attached Tracer span — the observability cost ladder.

    Tracing *off* is free by construction (``trace_span`` returns the
    shared ``NULL_SPAN`` singleton, no Span is allocated — locked by
    ``tests/test_obs.py``), so the bare row doubles as the tracing-off
    row; the deltas recorded here are the opt-in costs.
    """
    net = Network(gen.path_graph(n))
    init, on_round = _wavefront_program()
    repeats = 3  # best-of-N: the run is ~0.2s, scheduler noise dominates

    def timed(trace):
        t0 = time.perf_counter()
        res = net.run(init, on_round, max_rounds=WAVE_ROUNDS, trace=trace,
                      scheduler="active")
        return res, time.perf_counter() - t0

    timed(None)  # warm-up: the first run pays allocator/cache setup
    base_res, bare = min(
        (timed(None) for _ in range(repeats)), key=lambda rt: rt[1])
    trace_res, traced = min(
        (timed(RoundTrace()) for _ in range(repeats)), key=lambda rt: rt[1])

    def timed_span():
        span_trace = RoundTrace()
        tracer = Tracer()
        tracer.attach(span_trace)
        t0 = time.perf_counter()
        with tracer.span("wavefront", n=n):
            res = net.run(init, on_round, max_rounds=WAVE_ROUNDS,
                          trace=span_trace, scheduler="active")
        return (res, tracer), time.perf_counter() - t0

    (span_res, tracer), spanned = min(
        (timed_span() for _ in range(repeats)), key=lambda rt: rt[1])
    rows = [
        {"config": "bare (tracing off)", "n": n, "rounds": base_res.rounds,
         "seconds": round(bare, 4), "overhead": 1.0},
        {"config": "RoundTrace", "n": n, "rounds": trace_res.rounds,
         "seconds": round(traced, 4), "overhead": round(traced / bare, 2)},
        {"config": "RoundTrace + Tracer span", "n": n, "rounds": span_res.rounds,
         "seconds": round(spanned, 4), "overhead": round(spanned / bare, 2)},
    ]
    assert base_res.rounds == trace_res.rounds == span_res.rounds
    assert tracer.spans[0].rounds == span_res.rounds  # full attribution
    return rows


def test_micro_tracing_overhead_recorded(benchmark):
    """Satellite guard: record the tracing cost ladder on the 50k-path
    wavefront in benchmarks/results/ and bound the opt-in overhead."""
    rows = tracing_overhead_rows()
    emit("tracing_overhead.txt", rows,
         f"Tracing overhead - BFS wavefront on a {WAVE_N}-node path")
    for row in rows[1:]:
        assert row["seconds"] <= max(3 * rows[0]["seconds"],
                                     rows[0]["seconds"] + 0.05), rows

    net = Network(gen.path_graph(5000))
    init, on_round = _wavefront_program()
    trace = RoundTrace()
    Tracer().attach(trace)
    benchmark(lambda: net.run(init, on_round, max_rounds=WAVE_ROUNDS,
                              trace=trace, scheduler="active"))


def test_micro_trace_overhead_bounded(benchmark):
    """Tracing is opt-in; when on, it must stay within ~3x of untraced."""
    net = Network(gen.path_graph(3000))

    def traced():
        return _run_wavefront(net, "active"), RoundTrace()

    t0 = time.perf_counter()
    _run_wavefront(net, "active")
    bare = time.perf_counter() - t0
    init, on_round = _wavefront_program()
    t0 = time.perf_counter()
    net.run(init, on_round, max_rounds=WAVE_ROUNDS, trace=RoundTrace())
    with_trace = time.perf_counter() - t0
    assert with_trace <= max(3 * bare, bare + 0.05)
    benchmark(traced)


if __name__ == "__main__":
    emit("scheduler_speedup.txt", all_speedup_rows(), _SPEEDUP_TITLE)
    emit("tracing_overhead.txt", tracing_overhead_rows(),
         f"Tracing overhead - BFS wavefront on a {WAVE_N}-node path")
