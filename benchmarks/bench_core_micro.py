"""Micro-benchmarks of the core operations (library performance suite).

Not tied to a paper claim — this is the operational profile a downstream
user cares about: how long the embedding, configuration, weight sweep,
separator and DFS take at a representative size.  Regressions here flag
accidental quadratic behaviour in the face machinery.
"""

import networkx as nx

from repro.applications import biconnectivity
from repro.core.config import PlanarConfiguration
from repro.core.dfs import dfs_tree
from repro.core.faces import face_view
from repro.core.separator import cycle_separator
from repro.core.subroutines import dfs_order_phases
from repro.core.weights import weight
from repro.planar import embed
from repro.planar import generators as gen
from repro.trees import bfs_tree

N = 600
GRAPH = gen.delaunay(N, seed=7)
ROTATION = embed(GRAPH)
CONFIG = PlanarConfiguration.build(GRAPH, root=0)
EDGES = CONFIG.real_fundamental_edges()


def test_micro_embedding(benchmark):
    benchmark(lambda: embed(GRAPH))


def test_micro_configuration(benchmark):
    tree = bfs_tree(GRAPH, 0)
    benchmark(lambda: PlanarConfiguration(GRAPH, ROTATION, tree))


def test_micro_weight_sweep(benchmark):
    def sweep():
        return [weight(CONFIG, face_view(CONFIG, e)) for e in EDGES]

    result = benchmark(sweep)
    assert len(result) == len(EDGES)


def test_micro_largest_interior(benchmark):
    views = [face_view(CONFIG, e) for e in EDGES[:50]]

    def interiors():
        return max(len(v.interior()) for v in views)

    benchmark(interiors)


def test_micro_separator(benchmark):
    benchmark(lambda: cycle_separator(CONFIG))


def test_micro_dfs(benchmark):
    small = gen.delaunay(250, seed=7)
    benchmark(lambda: dfs_tree(small, 0))


def test_micro_dfs_order_phases(benchmark):
    benchmark(lambda: dfs_order_phases(CONFIG))


def test_micro_biconnectivity(benchmark):
    small = gen.random_planar(250, density=0.5, seed=7)
    benchmark(lambda: biconnectivity(small))
