"""E2 — Theorem 2 vs Awerbuch '85: Õ(D) vs Θ(n) DFS rounds.

Regenerates the comparison table on square grids (D ~ 2·sqrt(n)) and
Apollonian stacked triangulations (D ~ log n).  Shape: Awerbuch's measured
rounds grow linearly in n (rounds/n roughly constant in [1, 4]); the
deterministic algorithm's charged rounds track D·polylog(n), so on the
low-diameter family Awerbuch's rounds catch up to and overtake the charged
deterministic rounds as n grows.
"""

from _common import RESULTS_DIR, emit, run_and_emit
from repro.congest import RoundTrace, awerbuch_dfs_run, bfs_run
from repro.core.dfs import dfs_tree
from repro.obs import Tracer
from repro.planar import generators as gen

SIZES = (64, 144, 256, 484)


def dump_e2_trace(n: int = 64) -> str:
    """Span-attributed JSONL dump of one E2 instance (the ``repro trace``
    CLI's demo input: ``repro trace phases benchmarks/results/e2_trace.jsonl``)."""
    side = int(n ** 0.5)
    g = gen.grid(side, side)
    trace = RoundTrace()
    Tracer().attach(trace)
    with trace.tracer.span("e2", family="grid", n=len(g)):
        bfs_run(g, 0, trace=trace)
        awerbuch_dfs_run(g, 0, trace=trace)
    path = RESULTS_DIR / "e2_trace.jsonl"
    trace.dump_jsonl(path)
    return str(path)


def awerbuch_trace_rows(sizes=(64, 256, 100_000)):
    """Scheduler's-eye view of the Θ(n) baseline: the DFS token keeps the
    active set tiny, which is what makes the measured runs cheap to simulate
    — and the per-message word histogram proves the O(log n) budget holds.

    The 10^5 tier stays on the active-set scheduler deliberately: token
    passing is inherently sequential (one active node per round), which is
    the active scheduler's best case and the vectorized dispatch's worst —
    ~3·10^5 rounds still simulate in seconds because per-round work is the
    token, not n.  See docs/BENCHMARKS.md for the tier's runtime budget."""
    rows = []
    for n in sizes:
        side = int(n ** 0.5)
        g = gen.grid(side, side)
        trace = RoundTrace()
        res = awerbuch_dfs_run(g, 0, trace=trace)
        s = trace.summary()
        rows.append(
            {
                "n": len(g),
                "rounds": res.rounds,
                "messages": res.messages_sent,
                "peak_active": s["peak_active"],
                "mean_active": round(s["mean_active"], 2),
                "max_words": s["max_words"],
            }
        )
        assert s["max_words"] <= 2  # (TOKEN, depth): two words, in budget
        assert s["dropped"] == 0
    return rows


def test_e2_dfs_rounds(benchmark):
    rows = run_and_emit("e2", "e2_dfs_rounds.txt",
                        "E2 - deterministic DFS (charged) vs Awerbuch (measured)",
                        sizes=SIZES)
    emit("e2_awerbuch_trace.txt", awerbuch_trace_rows(),
         "E2 - Awerbuch under RoundTrace (active set stays near the token)")
    dump_e2_trace()
    for row in rows:
        assert row["awerbuch_rounds"] >= row["n"]          # Θ(n) floor
        assert row["awerbuch_rounds"] <= 4 * row["n"] + 8  # Awerbuch's bound
    low_d = sorted((r for r in rows if r["family"] == "apollonian"), key=lambda r: r["n"])
    # On the low-diameter family the Θ(n) baseline loses ground: Awerbuch's
    # rounds grow strictly relative to the Õ(D) charged rounds.
    first = low_d[0]["awerbuch_rounds"] / low_d[0]["det_rounds"]
    last = low_d[-1]["awerbuch_rounds"] / low_d[-1]["det_rounds"]
    assert last >= first
    grid = sorted((r for r in rows if r["family"] == "grid"), key=lambda r: r["n"])
    base = grid[1]["det/(D*log2n^2)"]
    assert grid[-1]["det/(D*log2n^2)"] <= 4 * base + 8

    g = gen.grid(10, 10)
    benchmark(lambda: dfs_tree(g, 0))


if __name__ == "__main__":
    run_and_emit("e2", "e2_dfs_rounds.txt",
                 "E2 - deterministic DFS (charged) vs Awerbuch (measured)", sizes=SIZES)
    emit("e2_awerbuch_trace.txt", awerbuch_trace_rows(),
         "E2 - Awerbuch under RoundTrace (active set stays near the token)")
    print(f"\nspan-attributed trace dump: {dump_e2_trace()}")
