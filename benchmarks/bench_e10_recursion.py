"""E10 — Theorem 2's recursion: O(log n) phases, 2/3-factor shrink.

Regenerates the main-loop table: phases against log2 n and the worst
per-phase component shrink factor.  Shape: phases stay within a small
multiple of log2 n; every non-final phase shrinks the largest remaining
component to at most 2/3 of its size.
"""

from _common import run_and_emit
from repro.core.dfs import dfs_tree
from repro.planar import generators as gen


def test_e10_recursion(benchmark):
    rows = run_and_emit("e10", "e10_recursion.txt",
                        "E10 - DFS main-loop phases and shrink factors")
    for row in rows:
        assert row["phases"] <= 3 * row["log2n"] + 3, row
        assert row["max_shrink_factor"] <= row["bound"] + 1e-9, row

    g = gen.cylinder(4, 40)
    benchmark(lambda: dfs_tree(g, 0))


if __name__ == "__main__":
    run_and_emit("e10", "e10_recursion.txt",
                 "E10 - DFS main-loop phases and shrink factors")
